// Chaos soak for the router tier: plain (non-retrying) clients against a
// router whose backends run the PR-5 fault injector. The backends lie,
// stall, corrupt, truncate, and die — the router's failover, ejection,
// and hedging must absorb all of it, so the contract at the router's
// client edge is *stronger* than at a bare backend's: every request
// terminates in an ALIGN_OK bit-identical to direct align() or a typed
// ErrorResponse. The clients here deliberately use call(), not
// call_with_retry(): surviving backend chaos is the router's job now.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/aligner.hpp"
#include "obs/metrics.hpp"
#include "router/router.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "sequence/generate.hpp"
#include "service/client.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"

namespace flsa {
namespace router {
namespace {

using service::AlignRequest;
using service::AlignResponse;
using service::Client;
using service::ErrorResponse;
using service::Response;
using service::ServiceConfig;
using service::TransportError;
using service::WireMatrix;

std::uint64_t counter(const char* name) {
  return obs::metrics().counter(name).value();
}

/// Backends (each with its own fault plan) plus one router in front.
struct ChaosFleet {
  std::vector<std::unique_ptr<service::AlignmentServer>> backends;
  std::unique_ptr<Router> router;

  ChaosFleet(const std::vector<std::string>& fault_plans,
             RouterConfig config = {}) {
    for (const std::string& spec : fault_plans) {
      ServiceConfig backend_config;
      backend_config.workers = 2;
      backend_config.fault_plan = service::parse_fault_plan(spec);
      backends.push_back(
          std::make_unique<service::AlignmentServer>(backend_config));
      backends.back()->start();
      config.backends.push_back({"127.0.0.1", backends.back()->port()});
    }
    router = std::make_unique<Router>(config);
    router->start();
  }

  ~ChaosFleet() {
    router->stop();
    for (auto& backend : backends) backend->stop();
  }
};

struct Tally {
  std::atomic<std::uint64_t> correct{0};
  std::atomic<std::uint64_t> rejected{0};   ///< typed ErrorResponse
  std::atomic<std::uint64_t> transport{0};  ///< client-side TransportError
  std::atomic<std::uint64_t> wrong{0};      ///< the unforgivable bucket
};

TEST(RouterChaos, EveryRequestTerminatesCorrectOrTypedAcrossAFaultyFleet) {
  // Three backends, three distinct failure personalities: an overloaded
  // rejecter, a connection killer (drops + mid-write truncation), and a
  // frame corrupter. The router re-fires retryable rejections, fails
  // channel victims over, and discards corrupt frames with the channel —
  // so a plain client must never see a damaged frame or a hang.
  ChaosFleet fleet(
      {
          "seed=17,reject=0.15,delay=0.1:5",
          "seed=29,drop=0.08,truncate=0.08",
          "seed=31,corrupt=0.08,reject=0.1",
      },
      [] {
        RouterConfig config;
        config.max_attempts = 4;
        return config;
      }());

  Xoshiro256 rng(4242);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 112, model, rng);
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  const Score expected =
      align(Sequence(Alphabet::protein(), a), Sequence(Alphabet::protein(), b),
            ScoringScheme(scoring::mdm78(), -10), options)
          .score;

  constexpr unsigned kClients = 3;
  constexpr int kRequestsEach = 24;
  Tally tally;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      try {
        client.connect("127.0.0.1", fleet.router->port());
      } catch (const TransportError&) {
        tally.transport.fetch_add(kRequestsEach);
        return;
      }
      for (int i = 0; i < kRequestsEach; ++i) {
        AlignRequest request;
        request.matrix = WireMatrix::kMdm78;
        request.gap_extend = -10;
        request.a = a;
        request.b = b;
        try {
          const Response response = client.call(std::move(request));
          if (const auto* ok = std::get_if<AlignResponse>(&response)) {
            if (ok->score == expected) {
              tally.correct.fetch_add(1);
            } else {
              tally.wrong.fetch_add(1);
              failures[t] = "wrong score " + std::to_string(ok->score) +
                            " (expected " + std::to_string(expected) + ")";
              return;
            }
          } else if (std::holds_alternative<ErrorResponse>(response)) {
            tally.rejected.fetch_add(1);
          } else {
            failures[t] = "response of an unexpected verb";
            return;
          }
        } catch (const TransportError&) {
          tally.transport.fetch_add(1);
          return;  // this connection is spent; its remaining calls moot
        } catch (const std::exception& e) {
          failures[t] = std::string("untyped failure: ") + e.what();
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (unsigned t = 0; t < kClients; ++t) {
    EXPECT_EQ(failures[t], "") << "client " << t;
  }
  EXPECT_EQ(tally.wrong.load(), 0u)
      << "a backend fault leaked through the router as a wrong score";
  EXPECT_EQ(tally.transport.load(), 0u)
      << "the router's client edge must stay clean while backends burn";
  // The router gets max_attempts tries across three backends, only one of
  // which rejects deterministically often — the overwhelming majority of
  // requests must come back correct, not as exhausted-attempt errors.
  EXPECT_GE(tally.correct.load(), std::uint64_t(kClients) * kRequestsEach / 2)
      << "correct=" << tally.correct << " rejected=" << tally.rejected
      << " transport=" << tally.transport;
}

TEST(RouterChaos, RejectedCoalescedBatchAnswersEveryMemberTyped) {
  // Regression: a backend can refuse a router-coalesced ALIGN_BATCH at
  // admission with one top-level ERROR naming the throwaway envelope id.
  // The router must map that envelope back to its member ops and answer
  // (or re-fire) each of them — not orphan them until a channel timeout
  // rescues the wreck. With an always-rejecting backend every pipelined
  // request must come back as a typed OVERLOADED, promptly.
  RouterConfig config;
  config.hedge_enabled = false;
  config.channels_per_backend = 1;
  config.max_attempts = 2;
  ChaosFleet fleet({"seed=1,reject=1"}, config);

  const std::uint64_t batches_before = counter("router.coalesce.batches");
  Client client;
  client.connect("127.0.0.1", fleet.router->port());
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    AlignRequest request;
    request.matrix = WireMatrix::kMdm78;
    request.gap_extend = -10;
    request.a = "TLDKLLKD";
    request.b = "TDVLKAD";
    (void)client.send(std::move(request));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const Response response = client.receive();
    const auto* error = std::get_if<ErrorResponse>(&response);
    ASSERT_NE(error, nullptr) << "response " << i << " was not an ERROR";
    EXPECT_EQ(error->code, service::ErrorCode::kOverloaded);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Rejections are instant; anything near a timeout means members were
  // orphaned and rescued by a channel death instead of the envelope map.
  EXPECT_LT(elapsed.count(), 5000) << "members were orphaned, not answered";
  // The flood must actually have exercised the coalescing path.
  EXPECT_GT(counter("router.coalesce.batches"), batches_before);
}

TEST(RouterChaos, MidFlightBackendDeathFailsOverWithoutALostRequest) {
  // Kill a backend while the router considers it healthy (the health
  // interval is parked at a minute, so ejection cannot save the day) and
  // keep sending: every request routed at the corpse must fail over to
  // the survivor and still come back bit-identical.
  RouterConfig config;
  config.health_interval_ms = 60000;
  config.hedge_enabled = false;  // isolate the failover path
  ChaosFleet fleet({"off", "off"}, config);

  Client client;
  client.connect("127.0.0.1", fleet.router->port());
  AlignRequest warm;
  warm.matrix = WireMatrix::kMdm78;
  warm.gap_extend = -10;
  warm.a = "TLDKLLKD";
  warm.b = "TDVLKAD";
  {
    const Response response = client.call(warm);
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr);
    ASSERT_EQ(ok->score, 82);
  }

  const std::uint64_t failovers_before = counter("router.failovers");
  fleet.backends[0]->stop();  // mid-session, unannounced

  for (int i = 0; i < 12; ++i) {
    AlignRequest request = warm;
    const Response response = client.call(std::move(request));
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr) << "request " << i << " lost to the dead backend";
    EXPECT_EQ(ok->score, 82);
  }
  // Least-loaded routing keeps picking the (nominally healthy) corpse, so
  // at least one of those answers must have been rescued by failover.
  EXPECT_GT(counter("router.failovers"), failovers_before);
}

TEST(RouterChaos, HedgeTakesOverWhenABackendStalls) {
  // One backend stalls every read for a full second; its twin is clean.
  // With hedging armed from the first request (min_samples=0) at a 30ms
  // floor, any request unlucky enough to be routed at the staller must be
  // re-issued to the twin and answered fast — the client never waits out
  // the stall. Coalescing is disabled (batched ops are not hedgeable) so
  // every op stays an eligible single.
  RouterConfig config;
  config.hedge_min_samples = 0;
  config.hedge_min_ms = 30;
  config.hedge_tick_ms = 5;
  config.hedge_budget_percent = 100;
  config.coalesce_max_jobs = 1;
  config.health_interval_ms = 60000;  // the prober must not eject the staller
  ChaosFleet fleet({"seed=3,delay=1:1000", "off"}, config);

  const std::uint64_t issued_before = counter("router.hedge.issued");

  Client client;
  client.connect("127.0.0.1", fleet.router->port());
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    AlignRequest request;
    request.matrix = WireMatrix::kMdm78;
    request.gap_extend = -10;
    request.a = "TLDKLLKD";
    request.b = "TDVLKAD";
    (void)client.send(std::move(request));
  }
  const auto start = std::chrono::steady_clock::now();
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Response response = client.receive();
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr) << "response " << i << " was not ALIGN_OK";
    EXPECT_EQ(ok->score, 82);
    ++answered;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(answered, kRequests);
  EXPECT_GT(counter("router.hedge.issued"), issued_before)
      << "no hedge fired — every request waited out the stall";
  // Everything must beat the 1s stall by a wide margin: the hedge fires
  // at ~30ms and the clean twin answers these tiny jobs in microseconds.
  EXPECT_LT(elapsed.count(), 900)
      << "a client waited out the stalled backend";
  // Teardown note: the staller still holds delayed reads; its stop()
  // drains them (about a second) — the fleet destructor absorbs that.
}

}  // namespace
}  // namespace router
}  // namespace flsa
