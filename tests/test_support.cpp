// Tests for the support substrate: PRNG, statistics, table/CSV emission,
// and the CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace flsa {
namespace {

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Xoshiro256, ZeroSeedStillProducesVariedOutput) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 30u);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedZeroThrows) {
  Xoshiro256 rng(5);
  EXPECT_THROW(rng.bounded(0), std::invalid_argument);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.bounded(kBuckets)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, Uniform01InHalfOpenRange) {
  Xoshiro256 rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, JumpCreatesDisjointStream) {
  Xoshiro256 a(3);
  Xoshiro256 b(3);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Stats, SummaryOfKnownSample) {
  const double data[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptySampleIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, MedianEvenCount) {
  const double data[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(data), 2.5);
}

TEST(Stats, AccumulatorMatchesBatch) {
  const double data[] = {0.5, 1.5, 9.0, -2.0, 4.0, 4.0};
  Accumulator acc;
  for (double x : data) acc.add(x);
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(acc.mean(), s.mean);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(Stats, Ci95ZeroForTinySamples) {
  Summary s;
  s.n = 1;
  s.stddev = 10.0;
  EXPECT_EQ(ci95_halfwidth(s), 0.0);
}

TEST(Stats, PercentileExactValuesOnKnownDistribution) {
  // 1..101: h = p * 100 lands on integers, so the type-7 rule reads the
  // order statistics directly and every answer is exact.
  std::vector<double> data;
  for (int i = 101; i >= 1; --i) data.push_back(i);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.50), 51.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.95), 96.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.99), 100.0);
  EXPECT_DOUBLE_EQ(percentile(data, 1.0), 101.0);
}

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  // {10, 20, 30, 40}: h = p * 3, so p = 0.5 -> halfway between 20 and 30,
  // and p = 0.25 -> 3/4 of the way from 10 to 20.
  const double data[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.25), 17.5);
  EXPECT_DOUBLE_EQ(percentile(data, 0.75), 32.5);
}

TEST(Stats, PercentileAgreesWithMedian) {
  const double odd[] = {9.0, 1.0, 5.0};
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(odd, 0.5), median(odd));
  EXPECT_DOUBLE_EQ(percentile(even, 0.5), median(even));
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);  // empty sample
  const double one[] = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.0);
  const double pair[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(pair, -0.5), 1.0);  // p clamps to [0, 1]
  EXPECT_DOUBLE_EQ(percentile(pair, 1.5), 2.0);
}

TEST(Stats, LatencyQuantilesMatchPercentile) {
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back((i * 37) % 1000);
  const LatencyQuantiles q = latency_quantiles(data);
  EXPECT_EQ(q.n, 1000u);
  EXPECT_DOUBLE_EQ(q.p50, percentile(data, 0.50));
  EXPECT_DOUBLE_EQ(q.p95, percentile(data, 0.95));
  EXPECT_DOUBLE_EQ(q.p99, percentile(data, 0.99));
  EXPECT_DOUBLE_EQ(q.max, 999.0);
}

TEST(Stats, LatencyQuantilesEmptySampleIsZero) {
  const LatencyQuantiles q = latency_quantiles({});
  EXPECT_EQ(q.n, 0u);
  EXPECT_EQ(q.p50, 0.0);
  EXPECT_EQ(q.p99, 0.0);
  EXPECT_EQ(q.max, 0.0);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"x", "y"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Csv, RejectsWrongArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"x", "y"});
  EXPECT_THROW(csv.write_row({"1"}), std::invalid_argument);
}

TEST(Cli, ParsesAllValueKinds) {
  CliParser cli("test");
  cli.add_flag("verbose", false, "verbosity");
  cli.add_int("count", 3, "count");
  cli.add_double("rate", 0.5, "rate");
  cli.add_string("name", "default", "name");
  const char* argv[] = {"prog",   "--verbose", "--count", "7",
                        "--rate=0.25", "--name", "widget", "extra"};
  ASSERT_TRUE(cli.parse(8, argv));
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
  EXPECT_EQ(cli.get_string("name"), "widget");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "extra");
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  CliParser cli("test");
  cli.add_int("count", 3, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 3);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MalformedIntThrows) {
  CliParser cli("test");
  cli.add_int("count", 0, "count");
  const char* argv[] = {"prog", "--count", "12x"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  cli.add_int("count", 0, "count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

}  // namespace
}  // namespace flsa
