// Tests for the top-level align() API: strategy selection under the
// paper's RM memory model and cross-strategy agreement.
#include <gtest/gtest.h>

#include "core/aligner.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(Aligner, AutoPicksFullMatrixWhenUnbounded) {
  Xoshiro256 rng(101);
  const Sequence a = random_sequence(Alphabet::protein(), 50, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 50, rng);
  AlignReport report;
  align(a, b, ScoringScheme::paper_default(), {}, &report);
  EXPECT_EQ(report.chosen, Strategy::kFullMatrix);
}

TEST(Aligner, AutoPicksFastLsaUnderTightMemory) {
  Xoshiro256 rng(102);
  const Sequence a = random_sequence(Alphabet::protein(), 400, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 400, rng);
  AlignOptions options;
  options.memory_limit_bytes = 64 * 1024;  // far below the 640 KB DPM
  AlignReport report;
  const Alignment aln =
      align(a, b, ScoringScheme::paper_default(), options, &report);
  EXPECT_EQ(report.chosen, Strategy::kFastLsa);
  EXPECT_EQ(aln.score,
            full_matrix_score(a, b, ScoringScheme::paper_default()));
  // The run respected the memory budget (paper's RM adaptation).
  EXPECT_LE(report.stats.peak_bytes, options.memory_limit_bytes);
}

TEST(Aligner, ChooseStrategyThreshold) {
  // 100x100 linear DPM = 101*101*4 bytes ~ 40.8 KB.
  EXPECT_EQ(choose_strategy(100, 100, false, 50 * 1024),
            Strategy::kFullMatrix);
  EXPECT_EQ(choose_strategy(100, 100, false, 30 * 1024),
            Strategy::kFastLsa);
  // Affine cells are 3x bigger.
  EXPECT_EQ(choose_strategy(100, 100, true, 50 * 1024),
            Strategy::kFastLsa);
  EXPECT_EQ(choose_strategy(100, 100, false, 0), Strategy::kFullMatrix);
}

TEST(Aligner, FitOptionsShrinkWithMemory) {
  const FastLsaOptions big = fit_fastlsa_options(10000, 10000, false,
                                                 8u << 20);
  const FastLsaOptions small = fit_fastlsa_options(10000, 10000, false,
                                                   256u << 10);
  EXPECT_GT(big.base_case_cells, small.base_case_cells);
  EXPECT_GE(small.base_case_cells, 16u);
}

TEST(Aligner, AllStrategiesAgreeLinear) {
  Xoshiro256 rng(103);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 150, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  Score scores[3];
  const Strategy strategies[] = {Strategy::kFullMatrix,
                                 Strategy::kHirschberg, Strategy::kFastLsa};
  for (int i = 0; i < 3; ++i) {
    AlignOptions options;
    options.strategy = strategies[i];
    options.fastlsa.base_case_cells = 64;
    scores[i] = align(pair.a, pair.b, scheme, options).score;
  }
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(scores[0], scores[2]);
}

TEST(Aligner, AllStrategiesAgreeAffine) {
  Xoshiro256 rng(104);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 120, model, rng);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  Score scores[3];
  const Strategy strategies[] = {Strategy::kFullMatrix,
                                 Strategy::kHirschberg, Strategy::kFastLsa};
  for (int i = 0; i < 3; ++i) {
    AlignOptions options;
    options.strategy = strategies[i];
    options.fastlsa.base_case_cells = 64;
    scores[i] = align(pair.a, pair.b, scheme, options).score;
  }
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(scores[0], scores[2]);
}

TEST(Aligner, ReportsCounters) {
  Xoshiro256 rng(105);
  const Sequence a = random_sequence(Alphabet::protein(), 80, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 70, rng);
  AlignReport report;
  AlignOptions options;
  options.strategy = Strategy::kHirschberg;
  align(a, b, ScoringScheme::paper_default(), options, &report);
  EXPECT_GT(report.stats.counters.total_cells(), 80u * 70u);
}

TEST(Aligner, RejectsAlphabetMismatch) {
  const Sequence a(Alphabet::dna(), "ACGT");
  const Sequence b(Alphabet::protein(), "ACDE");
  EXPECT_THROW(align(a, b, ScoringScheme::paper_default()),
               std::invalid_argument);
  const Sequence c(Alphabet::dna(), "ACGT");
  EXPECT_THROW(align(a, c, ScoringScheme::paper_default()),
               std::invalid_argument);
}

TEST(Aligner, StrategyNames) {
  EXPECT_STREQ(to_string(Strategy::kFullMatrix), "full-matrix");
  EXPECT_STREQ(to_string(Strategy::kHirschberg), "hirschberg");
  EXPECT_STREQ(to_string(Strategy::kFastLsa), "fastlsa");
  EXPECT_STREQ(to_string(Strategy::kAuto), "auto");
}

// Memory-limit ladder: FastLSA must succeed and stay within budget at
// every limit from generous to tight.
class MemoryLadder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MemoryLadder, RespectsLimit) {
  const std::size_t limit_kb = GetParam();
  Xoshiro256 rng(limit_kb);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 300, model, rng);
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  options.memory_limit_bytes = limit_kb * 1024;
  AlignReport report;
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment aln = align(pair.a, pair.b, scheme, options, &report);
  EXPECT_EQ(aln.score, full_matrix_score(pair.a, pair.b, scheme));
  EXPECT_LE(report.stats.peak_bytes, options.memory_limit_bytes);
}

INSTANTIATE_TEST_SUITE_P(Limits, MemoryLadder,
                         ::testing::Values(64, 128, 256, 512));

}  // namespace
}  // namespace flsa
