// Tests for Path geometry and Alignment construction/statistics.
#include <gtest/gtest.h>

#include "dp/alignment.hpp"
#include "dp/path.hpp"
#include "scoring/builtin.hpp"

namespace flsa {
namespace {

TEST(Path, TracebackMovesFrontTowardOrigin) {
  Path p(Cell{3, 3});
  EXPECT_EQ(p.front(), (Cell{3, 3}));
  p.push_traceback(Move::kDiag);
  EXPECT_EQ(p.front(), (Cell{2, 2}));
  p.push_traceback(Move::kUp);
  EXPECT_EQ(p.front(), (Cell{1, 2}));
  p.push_traceback(Move::kLeft);
  EXPECT_EQ(p.front(), (Cell{1, 1}));
  p.push_traceback(Move::kDiag);
  EXPECT_TRUE(p.reaches_origin());
  EXPECT_TRUE(p.is_consistent());
}

TEST(Path, ForwardMovesAreReversedTraceback) {
  Path p(Cell{2, 1});
  p.push_traceback(Move::kUp);
  p.push_traceback(Move::kDiag);
  const auto forward = p.forward_moves();
  ASSERT_EQ(forward.size(), 2u);
  EXPECT_EQ(forward[0], Move::kDiag);
  EXPECT_EQ(forward[1], Move::kUp);
  EXPECT_EQ(p.to_string(), "DU");
}

TEST(Path, RejectsMovesLeavingMatrix) {
  Path p(Cell{1, 1});
  p.push_traceback(Move::kDiag);
  EXPECT_THROW(p.push_traceback(Move::kUp), std::invalid_argument);
  EXPECT_THROW(p.push_traceback(Move::kLeft), std::invalid_argument);
  EXPECT_THROW(p.push_traceback(Move::kDiag), std::invalid_argument);
}

TEST(Path, MoveChars) {
  EXPECT_EQ(to_char(Move::kDiag), 'D');
  EXPECT_EQ(to_char(Move::kUp), 'U');
  EXPECT_EQ(to_char(Move::kLeft), 'L');
}

TEST(Alignment, FromPathBuildsPaperExample) {
  // The paper's worked example: TLDKLLKD vs TDVLKAD, optimal score 82 with
  // alignment TLDKLLK-D / T-D-VLKAD.
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  Path p(Cell{8, 7});
  // Forward moves: D U D U D D D L D (from the paper's Figure 1 path).
  const Move forward[] = {Move::kDiag, Move::kUp,   Move::kDiag,
                          Move::kUp,   Move::kDiag, Move::kDiag,
                          Move::kDiag, Move::kLeft, Move::kDiag};
  for (auto it = std::rbegin(forward); it != std::rend(forward); ++it) {
    p.push_traceback(*it);
  }
  ASSERT_TRUE(p.reaches_origin());
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment aln = alignment_from_path(a, b, p, scheme);
  EXPECT_EQ(aln.gapped_a, "TLDKLLK-D");
  EXPECT_EQ(aln.gapped_b, "T-D-VLKAD");
  EXPECT_EQ(aln.score, 82);
}

TEST(Alignment, StatisticsOnKnownAlignment) {
  Alignment aln;
  aln.gapped_a = "TLDKLLK-D";
  aln.gapped_b = "T-D-VLKAD";
  EXPECT_EQ(aln.length(), 9u);
  EXPECT_EQ(aln.matches(), 5u);  // T, D, L, K, D
  EXPECT_NEAR(aln.identity(), 5.0 / 9.0, 1e-12);
  EXPECT_EQ(aln.gap_count(), 3u);
}

TEST(Alignment, CigarEncoding) {
  Alignment aln;
  aln.gapped_a = "AAC-GT";
  aln.gapped_b = "AATTG-";
  EXPECT_EQ(aln.cigar(), "2=1X1I1=1D");
}

TEST(Alignment, CigarEmpty) {
  Alignment aln;
  EXPECT_EQ(aln.cigar(), "");
}

TEST(Alignment, PrettyWrapsAndMarksMatches) {
  Alignment aln;
  aln.gapped_a = "ACGT";
  aln.gapped_b = "AC-A";
  const std::string pretty = aln.pretty(2);
  // Expect two blocks of three lines each separated by a blank line.
  EXPECT_NE(pretty.find("AC\n||\nAC\n"), std::string::npos);
  EXPECT_NE(pretty.find("GT\n .\n-A\n"), std::string::npos);
}

TEST(Alignment, ScoreAlignmentLinearGaps) {
  Alignment aln;
  aln.gapped_a = "AC-T";
  aln.gapped_b = "A-GT";
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -2);
  // A/A=5, C/-=-2, -/G=-2, T/T=5.
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), 6);
}

TEST(Alignment, ScoreAlignmentAffineChargesOpenPerRun) {
  Alignment aln;
  aln.gapped_a = "A--CT";
  aln.gapped_b = "AGG-T";
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -3, -1);
  // A/A=5; gap run of 2 in a: -3-2; gap run of 1 in b: -3-1; T/T=5.
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), 5 - 5 - 4 + 5);
}

TEST(Alignment, ScoreAlignmentRejectsDoubleGapColumn) {
  Alignment aln;
  aln.gapped_a = "A-";
  aln.gapped_b = "A-";
  EXPECT_THROW(score_alignment(aln, ScoringScheme::paper_default(),
                               Alphabet::protein()),
               std::invalid_argument);
}

TEST(Alignment, FromPathRequiresCompletePath) {
  const Sequence a(Alphabet::dna(), "AC");
  const Sequence b(Alphabet::dna(), "AC");
  Path p(Cell{2, 2});
  p.push_traceback(Move::kDiag);  // incomplete
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -2);
  EXPECT_THROW(alignment_from_path(a, b, p, scheme), std::invalid_argument);
}

}  // namespace
}  // namespace flsa
