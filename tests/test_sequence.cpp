// Tests for alphabets, sequences, FASTA I/O, and the synthetic generators.
#include <gtest/gtest.h>

#include <sstream>

#include "sequence/fasta.hpp"
#include "sequence/generate.hpp"
#include "sequence/sequence.hpp"

namespace flsa {
namespace {

TEST(Alphabet, DnaBasics) {
  const Alphabet& dna = Alphabet::dna();
  EXPECT_EQ(dna.size(), 4u);
  EXPECT_EQ(dna.code('A'), 0);
  EXPECT_EQ(dna.code('a'), 0);  // case-insensitive
  EXPECT_EQ(dna.code('T'), 3);
  EXPECT_EQ(dna.letter(2), 'G');
  EXPECT_TRUE(dna.contains('c'));
  EXPECT_FALSE(dna.contains('N'));
}

TEST(Alphabet, ProteinHasTwentyResiduesInPamOrder) {
  const Alphabet& protein = Alphabet::protein();
  EXPECT_EQ(protein.size(), 20u);
  EXPECT_EQ(protein.code('A'), 0);
  EXPECT_EQ(protein.code('R'), 1);
  EXPECT_EQ(protein.code('V'), 19);
}

TEST(Alphabet, ForeignCharacterThrows) {
  EXPECT_THROW(Alphabet::dna().code('X'), std::invalid_argument);
}

TEST(Alphabet, RejectsDuplicateLetters) {
  EXPECT_THROW(Alphabet("AAB", "bad"), std::invalid_argument);
  EXPECT_THROW(Alphabet("aA", "bad-case"), std::invalid_argument);
}

TEST(Alphabet, RejectsEmpty) {
  EXPECT_THROW(Alphabet("", "empty"), std::invalid_argument);
}

TEST(Sequence, EncodeDecodeRoundTrip) {
  const Sequence s(Alphabet::dna(), "ACGTacgt", "id1", "a description");
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.to_string(), "ACGTACGT");  // canonical upper case
  EXPECT_EQ(s.id(), "id1");
  EXPECT_EQ(s.description(), "a description");
}

TEST(Sequence, IndexingReturnsCodes) {
  const Sequence s(Alphabet::dna(), "ACGT");
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[3], 3);
}

TEST(Sequence, ReversedReversesResidues) {
  const Sequence s(Alphabet::dna(), "AACGT");
  EXPECT_EQ(s.reversed().to_string(), "TGCAA");
  EXPECT_EQ(s.reversed().reversed().to_string(), s.to_string());
}

TEST(Sequence, SubsequenceSlices) {
  const Sequence s(Alphabet::dna(), "ACGTACGT");
  EXPECT_EQ(s.subsequence(2, 4).to_string(), "GTAC");
  EXPECT_EQ(s.subsequence(0, 0).to_string(), "");
  EXPECT_EQ(s.subsequence(8, 0).to_string(), "");
  EXPECT_THROW(s.subsequence(7, 3), std::invalid_argument);
}

TEST(Sequence, EncodedConstructorValidatesCodes) {
  EXPECT_NO_THROW(Sequence(Alphabet::dna(), std::vector<Residue>{0, 3, 2}));
  EXPECT_THROW(Sequence(Alphabet::dna(), std::vector<Residue>{0, 4}),
               std::invalid_argument);
}

TEST(Fasta, ParsesMultiRecordStream) {
  std::istringstream in(
      ">seq1 first sequence\nACGT\nACG\n\n>seq2\nTTTT\n");
  const auto records = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id(), "seq1");
  EXPECT_EQ(records[0].description(), "first sequence");
  EXPECT_EQ(records[0].to_string(), "ACGTACG");
  EXPECT_EQ(records[1].id(), "seq2");
  EXPECT_EQ(records[1].to_string(), "TTTT");
}

TEST(Fasta, HandlesWindowsLineEndings) {
  std::istringstream in(">s\r\nACGT\r\n");
  const auto records = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(Fasta, DataBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>late\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::invalid_argument);
}

TEST(Fasta, BadResidueNamesTheRecord) {
  std::istringstream in(">oops\nACGX\n");
  try {
    read_fasta(in, Alphabet::dna());
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
  }
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> records;
  records.emplace_back(Alphabet::dna(), "ACGTACGTACGT", "r1", "desc");
  records.emplace_back(Alphabet::dna(), "", "empty");
  std::ostringstream out;
  write_fasta(out, records, /*width=*/5);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].to_string(), "ACGTACGTACGT");
  EXPECT_EQ(parsed[0].id(), "r1");
  EXPECT_EQ(parsed[1].size(), 0u);
}

// ---- Hostile-input hardening (the alignment service feeds these parsers
// ---- untrusted bytes; every failure mode must be a clean typed error).

TEST(Fasta, TruncatedFinalRecordThrows) {
  // A header as the last line of the stream is a truncated upload.
  std::istringstream in(">seq1\nACGT\n>cut\n");
  try {
    read_fasta(in, Alphabet::dna());
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cut"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(Fasta, TruncatedHeaderWithoutNewlineThrows) {
  std::istringstream in(">seq1\nACGT\n>cut");
  EXPECT_THROW(read_fasta(in, Alphabet::dna()), std::invalid_argument);
}

TEST(Fasta, HeaderThenBlankLineIsExplicitEmptyRecord) {
  // write_fasta emits empty records as header + blank line; that must keep
  // round-tripping even with the truncation check in place.
  std::istringstream in(">empty\n\n");
  const auto records = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size(), 0u);
}

TEST(Fasta, FinalLineWithoutNewlineStillParses) {
  std::istringstream in(">s\nACGT");
  const auto records = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(Fasta, OversizedLineThrowsCleanly) {
  ParseLimits limits;
  limits.max_line_bytes = 16;
  std::istringstream in(">s\n" + std::string(64, 'A') + "\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna(), limits), std::invalid_argument);
}

TEST(Fasta, OversizedRecordAcrossManyLinesThrows) {
  ParseLimits limits;
  limits.max_record_residues = 10;
  std::istringstream in(">s\nACGT\nACGT\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::dna(), limits), std::invalid_argument);
}

TEST(Fasta, LimitBoundaryIsInclusive) {
  ParseLimits limits;
  limits.max_line_bytes = 4;
  limits.max_record_residues = 4;
  std::istringstream in(">s\nACGT\n");
  const auto records = read_fasta(in, Alphabet::dna(), limits);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(Fasta, CrlfWithBlankLinesAndFinalRecord) {
  std::istringstream in(">a one\r\nAC\r\nGT\r\n\r\n>b\r\nTT\r\n");
  const auto records = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
  EXPECT_EQ(records[0].description(), "one");
  EXPECT_EQ(records[1].to_string(), "TT");
}

TEST(Generate, RandomSequenceHasRequestedLength) {
  Xoshiro256 rng(1);
  const Sequence s = random_sequence(Alphabet::protein(), 1000, rng);
  EXPECT_EQ(s.size(), 1000u);
}

TEST(Generate, RandomSequenceDeterministicPerSeed) {
  Xoshiro256 rng1(9), rng2(9);
  const Sequence a = random_sequence(Alphabet::dna(), 64, rng1);
  const Sequence b = random_sequence(Alphabet::dna(), 64, rng2);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Generate, RandomSequenceUsesWholeAlphabet) {
  Xoshiro256 rng(2);
  const Sequence s = random_sequence(Alphabet::dna(), 4000, rng);
  int counts[4] = {};
  for (std::size_t i = 0; i < s.size(); ++i) ++counts[s[i]];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Generate, MutateZeroRatesIsIdentity) {
  Xoshiro256 rng(3);
  const Sequence parent = random_sequence(Alphabet::protein(), 200, rng);
  MutationModel model;
  model.substitution_rate = 0;
  model.insertion_rate = 0;
  model.deletion_rate = 0;
  const Sequence child = mutate(parent, model, rng);
  EXPECT_EQ(child.to_string(), parent.to_string());
}

TEST(Generate, MutateSubstitutionOnlyPreservesLength) {
  Xoshiro256 rng(4);
  const Sequence parent = random_sequence(Alphabet::protein(), 500, rng);
  MutationModel model;
  model.substitution_rate = 0.3;
  model.insertion_rate = 0;
  model.deletion_rate = 0;
  const Sequence child = mutate(parent, model, rng);
  ASSERT_EQ(child.size(), parent.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    differing += parent[i] != child[i];
  }
  // ~30% substitution rate, all to different residues.
  EXPECT_NEAR(static_cast<double>(differing), 150.0, 50.0);
}

TEST(Generate, HomologousPairLengthsNearTarget) {
  Xoshiro256 rng(5);
  MutationModel model;  // defaults: 2% indels each way
  const SequencePair pair =
      homologous_pair(Alphabet::dna(), 2000, model, rng);
  EXPECT_EQ(pair.a.size(), 2000u);
  EXPECT_NEAR(static_cast<double>(pair.b.size()), 2000.0, 400.0);
}

TEST(Generate, MutationModelValidation) {
  Xoshiro256 rng(6);
  const Sequence parent = random_sequence(Alphabet::dna(), 10, rng);
  MutationModel model;
  model.substitution_rate = 1.5;
  EXPECT_THROW(mutate(parent, model, rng), std::invalid_argument);
  model.substitution_rate = 0.1;
  model.extension_prob = 1.0;
  EXPECT_THROW(mutate(parent, model, rng), std::invalid_argument);
}

TEST(Generate, BiasedSequenceFollowsWeights) {
  Xoshiro256 rng(7);
  const double weights[] = {8.0, 1.0, 1.0, 0.0};
  const Sequence s = biased_sequence(Alphabet::dna(), weights, 5000, rng);
  int counts[4] = {};
  for (std::size_t i = 0; i < s.size(); ++i) ++counts[s[i]];
  EXPECT_GT(counts[0], 3600);
  EXPECT_EQ(counts[3], 0);
}

TEST(Generate, BiasedSequenceValidatesWeights) {
  Xoshiro256 rng(8);
  const double wrong_arity[] = {1.0, 1.0};
  EXPECT_THROW(biased_sequence(Alphabet::dna(), wrong_arity, 10, rng),
               std::invalid_argument);
  const double negative[] = {1.0, -1.0, 1.0, 1.0};
  EXPECT_THROW(biased_sequence(Alphabet::dna(), negative, 10, rng),
               std::invalid_argument);
  const double zeros[] = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(biased_sequence(Alphabet::dna(), zeros, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
