// Kernel conformance suite: the hard correctness contract behind the
// narrow saturating tiers (dp/kernel_narrow.*).
//
// One parameterized differential harness runs EVERY registered KernelKind
// over a grid of scoring schemes — including adversarial near-saturation
// match/gap magnitudes chosen to force overflow escalation at each lane
// width — and asserts:
//
//   * bit-identical boundary rows, scores AND edit scripts against the
//     scalar oracle (not just equal optima: the narrow tiers promise the
//     same tie-breaking, so FastLSA's traceback must come out identical),
//   * the escalation counters fire exactly when the clamp algebra
//     predicts (whole-call gate vs per-tile rail, int8 -> int16 -> int32),
//   * fixed-seed fuzzing over random alphabets/matrices/shapes across all
//     tiers at several score magnitudes, so every tier sees inputs it can
//     handle natively, inputs that rail mid-tile, and inputs its
//     whole-call gates must reject.
//
// This suite runs under ASan/UBSan and TSan in CI (see ci.yml): the
// saturating cores read through padded buffers, and the pads are part of
// the contract being checked here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "obs/obs.hpp"

namespace flsa {
namespace {

/// Every registered kernel, straight from the dispatch table — a tier
/// added to the registry is automatically covered by this suite.
std::vector<KernelKind> all_kernels() {
  std::vector<KernelKind> kinds;
  for (const KernelInfo& info : kernel_registry()) {
    kinds.push_back(info.kind);
  }
  return kinds;
}

/// One scheme of the conformance grid. Owns its alphabet/matrix (the
/// ScoringScheme only references them).
struct SchemeCase {
  std::string name;
  const Alphabet* alpha = nullptr;
  ScoringScheme scheme;
  std::shared_ptr<const Alphabet> own_alpha;        // keepalive
  std::shared_ptr<const SubstitutionMatrix> own_mx;  // keepalive
};

/// match/mismatch identity scheme over a custom alphabet.
SchemeCase identity_case(const std::string& name, const char* letters,
                         Score match, Score mismatch, Score gap) {
  auto alpha = std::make_shared<Alphabet>(letters, name);
  auto mx = std::make_shared<SubstitutionMatrix>(*alpha, name);
  for (Residue x = 0; x < alpha->size(); ++x) {
    for (Residue y = x; y < alpha->size(); ++y) {
      mx->set_symmetric(x, y, x == y ? match : mismatch);
    }
  }
  SchemeCase c{name, alpha.get(), ScoringScheme(*mx, gap), alpha, mx};
  return c;
}

/// The scheme grid: realistic tables plus adversarial magnitudes.
///  - "mdm78" / "blosum62" / "dna": the shapes real users run.
///  - "tiny": fits even int8 with room to spare (no escalation expected).
///  - "rail8": int8-representable scheme whose DP range overflows int8 on
///    runs of matches (per-tile rail -> int16 rescore).
///  - "rail16": int16-representable scheme whose DP range overflows int16
///    (per-tile rail -> int32 rescore; int8's gap gate rejects it whole).
///  - "reject16": scores outside even int16 (whole-call int32 fallback).
std::vector<SchemeCase> scheme_grid() {
  std::vector<SchemeCase> grid;
  grid.push_back({"mdm78", &Alphabet::protein(),
                  ScoringScheme::paper_default(), nullptr, nullptr});
  {
    const SubstitutionMatrix& blosum = scoring::blosum62();
    grid.push_back({"blosum62", &blosum.alphabet(),
                    ScoringScheme(blosum, -10), nullptr, nullptr});
  }
  {
    auto mx = std::make_shared<SubstitutionMatrix>(scoring::dna(5, -4));
    grid.push_back({"dna", &mx->alphabet(), ScoringScheme(*mx, -6), nullptr,
                    mx});
  }
  grid.push_back(identity_case("tiny", "AB", 3, -1, -2));
  grid.push_back(identity_case("rail8", "AC", 3, -1, -3));
  grid.push_back(identity_case("rail16", "AC", 70, -4, -70));
  grid.push_back(identity_case("reject16", "AC", 33000, -5, -8));
  return grid;
}

Sequence uniform_seq(const Alphabet& alpha, std::size_t n) {
  return Sequence(alpha, std::string(n, alpha.letter(0)));
}

/// Differential check of one (scheme, pair) input across every kernel:
/// full boundary row, score, and (on non-degenerate shapes) the FastLSA
/// edit script, all bit-identical to the scalar oracle.
void expect_conformant(const SchemeCase& c, const Sequence& a,
                       const Sequence& b, bool check_scripts) {
  const ScoringScheme& scheme = c.scheme;
  const std::vector<Score> ref_row =
      last_row_linear(a.residues(), b.residues(), scheme);
  const Score ref_score = ref_row.empty() ? 0 : ref_row.back();

  FastLsaOptions fopts;
  fopts.k = 4;
  fopts.base_case_cells = 64;
  HirschbergOptions hopts;
  hopts.base_case_cells = 32;
  Alignment fm;
  if (check_scripts) {
    fm = full_matrix_align(a, b, scheme);
    ASSERT_EQ(fm.score, ref_score) << c.name;
  }

  for (const KernelKind kind : all_kernels()) {
    const std::string tag =
        c.name + "/" + to_string(kind) + " m=" + std::to_string(a.size()) +
        " n=" + std::to_string(b.size());
    ASSERT_EQ(last_row_linear(kind, a.residues(), b.residues(), scheme),
              ref_row)
        << tag;
    ASSERT_EQ(global_score_linear(kind, a.residues(), b.residues(), scheme),
              ref_score)
        << tag;
    if (check_scripts) {
      fopts.kernel = kind;
      const Alignment fl = fastlsa_align(a, b, scheme, fopts);
      ASSERT_EQ(fl.score, fm.score) << tag;
      ASSERT_EQ(fl.gapped_a, fm.gapped_a) << tag;
      ASSERT_EQ(fl.gapped_b, fm.gapped_b) << tag;
      hopts.kernel = kind;
      ASSERT_EQ(hirschberg_align(a, b, scheme, hopts).score, fm.score)
          << tag;
    }
  }
}

/// Differential check of raw rectangle sweeps with explicit (possibly
/// hostile) boundary caches — the exact call FastLSA's fill-grid phase
/// makes. `spread` scales the random boundary values; a large spread
/// forces the narrow tiers' boundary conversion itself to escalate.
void expect_sweep_conformant(const SchemeCase& c, std::size_t m,
                             std::size_t n, Score spread, Xoshiro256& rng) {
  const Sequence a = random_sequence(*c.alpha, m, rng);
  const Sequence b = random_sequence(*c.alpha, n, rng);
  std::vector<Score> top(n + 1);
  std::vector<Score> left(m + 1);
  for (Score& v : top) {
    v = static_cast<Score>(rng.bounded(static_cast<std::uint64_t>(
            2 * spread + 1))) -
        spread;
  }
  for (Score& v : left) {
    v = static_cast<Score>(rng.bounded(static_cast<std::uint64_t>(
            2 * spread + 1))) -
        spread;
  }
  left[0] = top[0];

  std::vector<Score> ref_bottom(n + 1);
  std::vector<Score> ref_right(m + 1);
  sweep_rectangle_linear(KernelKind::kScalar, a.residues(), b.residues(),
                         c.scheme, top, left, ref_bottom, ref_right);
  for (const KernelKind kind : all_kernels()) {
    std::vector<Score> bottom(n + 1);
    std::vector<Score> right(m + 1);
    sweep_rectangle_linear(kind, a.residues(), b.residues(), c.scheme, top,
                           left, bottom, right);
    const std::string tag = c.name + "/" + to_string(kind) +
                            " spread=" + std::to_string(spread);
    ASSERT_EQ(bottom, ref_bottom) << tag;
    ASSERT_EQ(right, ref_right) << tag;
  }
}

// ---------------------------------------------------------------------
// The registry itself: spellings round-trip, kAuto resolves to an
// always-exact kernel (never an opt-in narrow tier).

TEST(KernelRegistry, NamesRoundTripThroughParser) {
  ASSERT_GE(kernel_registry().size(), 5u);
  for (const KernelInfo& info : kernel_registry()) {
    EXPECT_STREQ(to_string(info.kind), info.name);
    KernelKind parsed = KernelKind::kAuto;
    EXPECT_TRUE(parse_kernel_kind(info.name, &parsed)) << info.name;
    EXPECT_EQ(parsed, info.kind) << info.name;
    EXPECT_NE(info.summary, nullptr);
    EXPECT_NE(std::string_view(info.summary), "");
  }
  KernelKind parsed = KernelKind::kAuto;
  EXPECT_FALSE(parse_kernel_kind("int13", &parsed));
}

TEST(KernelRegistry, AutoNeverResolvesToNarrowTier) {
  const KernelKind resolved = resolve_kernel(KernelKind::kAuto);
  EXPECT_TRUE(resolved == KernelKind::kScalar ||
              resolved == KernelKind::kSimd);
  // Explicit requests pass through unchanged.
  for (const KernelKind kind :
       {KernelKind::kScalar, KernelKind::kSimd, KernelKind::kInt16,
        KernelKind::kInt8}) {
    EXPECT_EQ(resolve_kernel(kind), kind);
  }
}

// ---------------------------------------------------------------------
// The differential grid: every scheme x a ladder of shapes (empty edges,
// sub-vector, band-tail remainders, multi-tile) x every kernel.

class SchemeConformance : public ::testing::TestWithParam<int> {};

TEST_P(SchemeConformance, AllKernelsMatchScalarOracle) {
  const SchemeCase c = scheme_grid()[static_cast<std::size_t>(GetParam())];
  Xoshiro256 rng(0xC0FFEEu + static_cast<std::uint64_t>(GetParam()));

  struct Shape {
    std::size_t m, n;
    bool scripts;
  };
  // 65/96 cross the int8 tile extent (64); 17/33/41 leave band-core tail
  // rows (rows % 16 != 0); 1 and 0 hit the degenerate paths.
  const Shape shapes[] = {{0, 0, false}, {0, 9, false},  {9, 0, false},
                          {1, 1, true},  {5, 33, true},  {33, 5, true},
                          {17, 17, true}, {48, 31, true}, {64, 64, true},
                          {65, 70, true}, {96, 41, true}};
  for (const Shape& s : shapes) {
    const Sequence a = random_sequence(*c.alpha, s.m, rng);
    const Sequence b = random_sequence(*c.alpha, s.n, rng);
    expect_conformant(c, a, b, s.scripts);
  }
  // Runs of matches climb the DP at the full match rate — the adversarial
  // input for a saturating tier (rail8/rail16 overflow here by design).
  expect_conformant(c, uniform_seq(*c.alpha, 70), uniform_seq(*c.alpha, 60),
                    true);
  // Raw sweeps with boundary caches: benign spread, then one hostile
  // enough that no int16 relative domain can hold it.
  expect_sweep_conformant(c, 40, 90, 1000, rng);
  expect_sweep_conformant(c, 90, 40, 50000, rng);
}

INSTANTIATE_TEST_SUITE_P(Grid, SchemeConformance,
                         ::testing::Range(0, 7));  // == scheme_grid().size()

TEST(SchemeConformance, GridSizeMatchesInstantiation) {
  EXPECT_EQ(scheme_grid().size(), 7u);
}

// A rectangle taller than the int16 tile extent (1024): exercises the
// int16 strip tiling and inter-tile boundary carry.
TEST(SchemeConformance, TallRectangleCrossesInt16TileExtent) {
  const SchemeCase c = identity_case("tall", "ACGT", 4, -2, -2);
  Xoshiro256 rng(99);
  const Sequence a = random_sequence(*c.alpha, 1100, rng);
  const Sequence b = random_sequence(*c.alpha, 70, rng);
  expect_conformant(c, a, b, /*check_scripts=*/false);
}

// ---------------------------------------------------------------------
// Escalation accounting: the counters must fire exactly when the clamp
// algebra predicts, and never change the answer. These doubles as the
// deterministic regression corpus: fixed sequences, fixed schemes, exact
// expected counts.

/// 60x60 all-'A' under +3/-3: the relative DP domain climbs 3 cells/step
/// past int8's +127 rail mid-tile, but sits far inside int16. One int8
/// tile (60 <= tile extent 64) -> exactly one escalation; int16 clean.
TEST(KernelEscalation, Int8RailsOnceInt16Clean) {
  const SchemeCase c = identity_case("corpus8", "AC", 3, -1, -3);
  const Sequence a = uniform_seq(*c.alpha, 60);
  const Score want = global_score_linear(a.residues(), a.residues(),
                                         c.scheme);
  EXPECT_EQ(want, 180);  // 60 matches at +3

  DpCounters c8;
  EXPECT_EQ(global_score_linear(KernelKind::kInt8, a.residues(),
                                a.residues(), c.scheme, &c8),
            want);
  EXPECT_EQ(c8.kernel_escalations, 1u);

  DpCounters c16;
  EXPECT_EQ(global_score_linear(KernelKind::kInt16, a.residues(),
                                a.residues(), c.scheme, &c16),
            want);
  EXPECT_EQ(c16.kernel_escalations, 0u);
}

/// 600x600 all-'A' under +70/-70: the DP range (42000) overflows int16 in
/// its single 600 <= 1024 tile -> exactly one int16->int32 escalation.
/// int8 rejects the gap at the whole-call gate (32 * 70 > 127) and then
/// rails the same int16 tile -> exactly two.
TEST(KernelEscalation, Int16RailsOnceInt8GateThenRails) {
  const SchemeCase c = identity_case("corpus16", "AC", 70, -4, -70);
  const Sequence a = uniform_seq(*c.alpha, 600);
  const Score want = global_score_linear(a.residues(), a.residues(),
                                         c.scheme);
  EXPECT_EQ(want, 42000);

  DpCounters c16;
  EXPECT_EQ(global_score_linear(KernelKind::kInt16, a.residues(),
                                a.residues(), c.scheme, &c16),
            want);
  EXPECT_EQ(c16.kernel_escalations, 1u);

  DpCounters c8;
  EXPECT_EQ(global_score_linear(KernelKind::kInt8, a.residues(),
                                a.residues(), c.scheme, &c8),
            want);
  EXPECT_EQ(c8.kernel_escalations, 2u);
}

/// Scores outside int16 entirely: the profile build rejects the scheme
/// and the whole call falls through to the int32 reference in one step
/// per rejected tier (no per-tile attempts at all).
TEST(KernelEscalation, SchemeOutsideInt16EscalatesWholeCall) {
  const SchemeCase c = identity_case("corpus32", "AC", 33000, -5, -8);
  const Sequence a = uniform_seq(*c.alpha, 20);
  const Score want = 20 * 33000;
  EXPECT_EQ(global_score_linear(a.residues(), a.residues(), c.scheme),
            want);

  DpCounters c16;
  EXPECT_EQ(global_score_linear(KernelKind::kInt16, a.residues(),
                                a.residues(), c.scheme, &c16),
            want);
  EXPECT_EQ(c16.kernel_escalations, 1u);

  DpCounters c8;
  EXPECT_EQ(global_score_linear(KernelKind::kInt8, a.residues(),
                                a.residues(), c.scheme, &c8),
            want);
  EXPECT_EQ(c8.kernel_escalations, 2u);
}

/// Benign scheme/shape combinations escalate nowhere. The headroom each
/// tier offers differs: int16 holds a DNA-magnitude scheme over hundreds
/// of cells, while int8's +-127 relative domain only covers a 64-extent
/// tile when per-cell magnitudes stay near +-1.
TEST(KernelEscalation, BenignSchemeNeverEscalates) {
  Xoshiro256 rng(7);
  {
    const SchemeCase c = identity_case("benign16", "ACGT", 5, -4, -2);
    const Sequence a = random_sequence(*c.alpha, 120, rng);
    const Sequence b = random_sequence(*c.alpha, 90, rng);
    const Score want = global_score_linear(a.residues(), b.residues(),
                                           c.scheme);
    DpCounters counters;
    EXPECT_EQ(global_score_linear(KernelKind::kInt16, a.residues(),
                                  b.residues(), c.scheme, &counters),
              want);
    EXPECT_EQ(counters.kernel_escalations, 0u);
  }
  {
    const SchemeCase c = identity_case("benign8", "ACGT", 1, -1, -1);
    const Sequence a = random_sequence(*c.alpha, 60, rng);
    const Sequence b = random_sequence(*c.alpha, 50, rng);
    const Score want = global_score_linear(a.residues(), b.residues(),
                                           c.scheme);
    DpCounters counters;
    EXPECT_EQ(global_score_linear(KernelKind::kInt8, a.residues(),
                                  b.residues(), c.scheme, &counters),
              want);
    EXPECT_EQ(counters.kernel_escalations, 0u);
  }
}

/// Escalations surface through FastLsaStats and leave the traceback
/// bit-identical: an int8 run where every match-run tile rails.
TEST(KernelEscalation, FastLsaCountsEscalationsAndStaysExact) {
  const SchemeCase c = identity_case("fastlsa8", "AC", 120, -1, -3);
  const Sequence a = uniform_seq(*c.alpha, 200);
  const Alignment fm = full_matrix_align(a, a, c.scheme);
  EXPECT_EQ(fm.score, 200 * 120);

  FastLsaOptions opts;
  opts.k = 4;
  opts.base_case_cells = 256;
  opts.kernel = KernelKind::kInt8;
  FastLsaStats stats;
  const Alignment fl = fastlsa_align(a, a, c.scheme, opts, &stats);
  EXPECT_EQ(fl.score, fm.score);
  EXPECT_EQ(fl.gapped_a, fm.gapped_a);
  EXPECT_EQ(fl.gapped_b, fm.gapped_b);
  EXPECT_EQ(stats.kernel_used, KernelKind::kInt8);
  EXPECT_GT(stats.counters.kernel_escalations, 0u);
}

/// The obs registry mirrors the counter under the kernel.escalations
/// metric (compiled out under -DFLSA_OBS=OFF; the conformance CI matrix
/// builds both ways).
TEST(KernelEscalation, ObsMetricMirrorsCounter) {
#if defined(FLSA_OBS_OFF)
  GTEST_SKIP() << "observability compiled out (-DFLSA_OBS=OFF)";
#else
  const SchemeCase c = identity_case("obs8", "AC", 3, -1, -3);
  const Sequence a = uniform_seq(*c.alpha, 60);
  obs::set_enabled(true);
  obs::metrics().reset();
  DpCounters counters;
  global_score_linear(KernelKind::kInt8, a.residues(), a.residues(),
                      c.scheme, &counters);
  obs::set_enabled(false);
  EXPECT_EQ(counters.kernel_escalations, 1u);
  EXPECT_EQ(obs::metrics().counter("kernel.escalations").value(), 1u);
#endif
}

// ---------------------------------------------------------------------
// Score-bound band pruning (FastLsaOptions::prune) must never change the
// optimal score or the traceback — the bound is admissible.

TEST(PruneConformance, PruningKeepsScoreAndScriptOnEveryTier) {
  const SequencePair pair = bench::sized_workload(400, true).make();
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment fm = full_matrix_align(pair.a, pair.b, scheme);
  for (const KernelKind kind : all_kernels()) {
    FastLsaOptions opts;
    opts.k = 4;
    opts.base_case_cells = 512;
    opts.kernel = kind;
    opts.prune = true;
    FastLsaStats stats;
    const Alignment fl = fastlsa_align(pair.a, pair.b, scheme, opts,
                                       &stats);
    EXPECT_EQ(fl.score, fm.score) << to_string(kind);
    EXPECT_EQ(fl.gapped_a, fm.gapped_a) << to_string(kind);
    EXPECT_EQ(fl.gapped_b, fm.gapped_b) << to_string(kind);
  }
}

// ---------------------------------------------------------------------
// Fixed-seed fuzzing across all tiers: random alphabets, matrices and
// shapes at several magnitudes, so the same run covers native narrow
// arithmetic, mid-tile rails, and whole-call gate rejections.

class NarrowFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NarrowFuzz, AllTiersBitIdenticalAtEveryMagnitude) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 2862933555u + 29);
  // x1: everything fits int8. x7: int8 rails on runs. x300: int8 profile
  // rejected, int16 rails sometimes. x5000: int16 rails routinely.
  const Score scales[] = {1, 7, 300, 5000};
  for (const Score scale : scales) {
    static const char* kLetterSets[] = {"AB", "ACGT", "ABCDEFGH"};
    const char* letters = kLetterSets[rng.bounded(3)];
    const auto alpha = std::make_shared<Alphabet>(letters, "nfuzz");
    SubstitutionMatrix mx(*alpha, "nfuzz");
    for (Residue x = 0; x < alpha->size(); ++x) {
      for (Residue y = x; y < alpha->size(); ++y) {
        const Score base = x == y
                               ? static_cast<Score>(rng.bounded(14) + 1)
                               : static_cast<Score>(rng.bounded(13)) - 9;
        mx.set_symmetric(x, y, base * scale);
      }
    }
    const Score gap =
        -static_cast<Score>(rng.bounded(11) + 1) * (scale > 7 ? 7 : scale);
    const ScoringScheme scheme(mx, gap);
    SchemeCase c{"scale" + std::to_string(scale), alpha.get(), scheme,
                 alpha, nullptr};

    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t m = rng.bounded(90);
      const std::size_t n = rng.bounded(90);
      const Sequence a = random_sequence(*alpha, m, rng);
      const Sequence b = random_sequence(*alpha, n, rng);
      expect_conformant(c, a, b, /*check_scripts=*/trial == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NarrowFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace flsa
