// Tests for the full-matrix (Needleman-Wunsch) baseline: the paper's FM
// algorithm, including its worked example (Figure 1).
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/kernel.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(FullMatrix, PaperExampleAlignment) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const Alignment aln =
      full_matrix_align(a, b, ScoringScheme::paper_default());
  EXPECT_EQ(aln.score, 82);
  // The paper lists two co-optimal alignments; the deterministic
  // diag-first traceback yields one of them.
  const bool first = aln.gapped_a == "TLDKLLK-D" &&
                     aln.gapped_b == "T-DVL-KAD";
  const bool second = aln.gapped_a == "TLDKLLK-D" &&
                      aln.gapped_b == "T-D-VLKAD";
  EXPECT_TRUE(first || second)
      << aln.gapped_a << " / " << aln.gapped_b;
  // Independent re-scoring agrees.
  EXPECT_EQ(score_alignment(aln, ScoringScheme::paper_default(),
                            Alphabet::protein()),
            82);
}

TEST(FullMatrix, Figure1DpmEntriesOnTheOptimalPath) {
  // Spot-check DPM values printed in the paper's Figure 1 (rows TLDKLLKD,
  // columns TDVLKAD); the subscripted entries form the optimal path
  // 0 -> 20 -> 10 -> 30 -> 20 -> 32 -> 52 -> 72 -> 62 -> 82.
  const Sequence a(Alphabet::protein(), "TLDKLLKD");  // rows
  const Sequence b(Alphabet::protein(), "TDVLKAD");   // columns
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  std::vector<Score> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left,
                          dpm);
  EXPECT_EQ(dpm(0, 0), 0);
  EXPECT_EQ(dpm(1, 1), 20);  // [T,T], subscript 9 in the figure
  EXPECT_EQ(dpm(2, 1), 10);  // [T,L], subscript 8
  EXPECT_EQ(dpm(3, 2), 30);  // [D,D], subscript 7
  EXPECT_EQ(dpm(4, 2), 20);  // [D,K], subscript 6
  EXPECT_EQ(dpm(5, 3), 32);  // [V,L], subscript 5
  EXPECT_EQ(dpm(5, 4), 50);  // [L,L] neighbour value from the figure
  EXPECT_EQ(dpm(6, 4), 52);  // [L,L], subscript 4
  EXPECT_EQ(dpm(7, 5), 72);  // [K,K], subscript 3
  EXPECT_EQ(dpm(7, 6), 62);  // [A,K], subscript 2
  EXPECT_EQ(dpm(8, 6), 72);  // [A,D] marked entry
  EXPECT_EQ(dpm(8, 7), 82);  // corner, subscript 1: the optimal score
}

TEST(FullMatrix, EmptyAndDegenerateInputs) {
  const SubstitutionMatrix m = scoring::dna(1, -1);
  const ScoringScheme scheme(m, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");

  Alignment aln = full_matrix_align(empty, empty, scheme);
  EXPECT_EQ(aln.score, 0);
  EXPECT_EQ(aln.length(), 0u);

  aln = full_matrix_align(acg, empty, scheme);
  EXPECT_EQ(aln.score, -6);
  EXPECT_EQ(aln.gapped_a, "ACG");
  EXPECT_EQ(aln.gapped_b, "---");

  aln = full_matrix_align(empty, acg, scheme);
  EXPECT_EQ(aln.score, -6);
  EXPECT_EQ(aln.gapped_a, "---");
  EXPECT_EQ(aln.gapped_b, "ACG");
}

TEST(FullMatrix, IdenticalSequencesAlignPerfectly) {
  Xoshiro256 rng(21);
  const Sequence s = random_sequence(Alphabet::protein(), 64, rng);
  const Alignment aln =
      full_matrix_align(s, s, ScoringScheme::paper_default());
  EXPECT_EQ(aln.gapped_a, aln.gapped_b);
  EXPECT_EQ(aln.gap_count(), 0u);
  EXPECT_DOUBLE_EQ(aln.identity(), 1.0);
}

TEST(FullMatrix, TracebackPrefersDiagonalOnTies) {
  // With identity scoring 0/0 and gap 0 every path is optimal; the
  // deterministic tie-break must pick all-diagonal.
  const SubstitutionMatrix m = scoring::identity(Alphabet::dna(), 0, 0);
  const ScoringScheme scheme(m, 0);
  const Sequence a(Alphabet::dna(), "ACGT");
  const Sequence b(Alphabet::dna(), "TGCA");
  const Alignment aln = full_matrix_align(a, b, scheme);
  EXPECT_EQ(aln.gapped_a, "ACGT");
  EXPECT_EQ(aln.gapped_b, "TGCA");
}

TEST(FullMatrix, AlignmentScoreAlwaysMatchesScoreOnlyPass) {
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + rng.bounded(40);
    const std::size_t n = 1 + rng.bounded(40);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const ScoringScheme& scheme = ScoringScheme::paper_default();
    const Alignment aln = full_matrix_align(a, b, scheme);
    EXPECT_EQ(aln.score,
              global_score_linear(a.residues(), b.residues(), scheme));
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::protein()), aln.score);
  }
}

TEST(FullMatrix, HomologousPairsScoreAboveRandom) {
  Xoshiro256 rng(23);
  MutationModel model;
  model.substitution_rate = 0.1;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 120, model, rng);
  const Sequence random_b =
      random_sequence(Alphabet::protein(), pair.b.size(), rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Score related = full_matrix_score(pair.a, pair.b, scheme);
  const Score unrelated = full_matrix_score(pair.a, random_b, scheme);
  EXPECT_GT(related, unrelated);
}

TEST(FullMatrix, RegionFillMatchesWholeFill) {
  Xoshiro256 rng(24);
  const Sequence a = random_sequence(Alphabet::dna(), 12, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 9, rng);
  const SubstitutionMatrix m = scoring::dna(2, -1);
  const ScoringScheme scheme(m, -2);
  std::vector<Score> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);

  Matrix2D<Score> whole;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left,
                          whole);

  // Fill the same matrix in four quadrant regions (wavefront order).
  Matrix2D<Score> tiled(a.size() + 1, b.size() + 1);
  std::copy(top.begin(), top.end(), tiled.row(0));
  for (std::size_t r = 0; r <= a.size(); ++r) tiled(r, 0) = left[r];
  const std::size_t rm = 5, cm = 4;
  fill_matrix_region_linear(a.residues(), b.residues(), scheme, tiled, 1, 1,
                            rm, cm);
  fill_matrix_region_linear(a.residues(), b.residues(), scheme, tiled, 1,
                            cm + 1, rm, b.size() - cm);
  fill_matrix_region_linear(a.residues(), b.residues(), scheme, tiled,
                            rm + 1, 1, a.size() - rm, cm);
  fill_matrix_region_linear(a.residues(), b.residues(), scheme, tiled,
                            rm + 1, cm + 1, a.size() - rm, b.size() - cm);
  for (std::size_t r = 0; r <= a.size(); ++r) {
    for (std::size_t c = 0; c <= b.size(); ++c) {
      EXPECT_EQ(tiled(r, c), whole(r, c)) << r << "," << c;
    }
  }
}

TEST(FullMatrix, ExtendPathToOriginAddsLeadingGaps) {
  Path p(Cell{3, 2});
  p.push_traceback(Move::kDiag);
  p.push_traceback(Move::kDiag);  // front now (1, 0)
  extend_path_to_origin(p);
  EXPECT_TRUE(p.reaches_origin());
  EXPECT_EQ(p.to_string(), "UDD");
}

// Property sweep over gap penalties: optimal score must be monotone
// non-increasing as the gap penalty deepens.
class GapPenaltySweep : public ::testing::TestWithParam<Score> {};

TEST_P(GapPenaltySweep, ScoreMonotoneInGapPenalty) {
  const Score gap = GetParam();
  Xoshiro256 rng(31);
  const Sequence a = random_sequence(Alphabet::protein(), 50, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 45, rng);
  const ScoringScheme scheme(scoring::mdm78(), gap);
  const ScoringScheme deeper(scoring::mdm78(), gap - 5);
  EXPECT_GE(full_matrix_score(a, b, scheme),
            full_matrix_score(a, b, deeper));
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapPenaltySweep,
                         ::testing::Values(0, -2, -5, -10, -20, -40));

}  // namespace
}  // namespace flsa
