// Tests for sequential FastLSA (linear gaps): correctness against the FM
// baseline across k, base-case-buffer sizes, and problem shapes; operation
// counts against the paper's analytical bounds; memory behaviour.
#include <gtest/gtest.h>

#include "core/fastlsa.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"
#include "simexec/model.hpp"

namespace flsa {
namespace {

FastLsaOptions opts(unsigned k, std::size_t base_cells) {
  FastLsaOptions o;
  o.k = k;
  o.base_case_cells = base_cells;
  return o;
}

TEST(FastLsa, PaperExample) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  // Tiny buffer forces at least one general-case split even on this 8x7
  // example.
  const Alignment aln = fastlsa_align(a, b, ScoringScheme::paper_default(),
                                      opts(2, 16));
  EXPECT_EQ(aln.score, 82);
}

TEST(FastLsa, MatchesFullMatrixPathExactly) {
  // Same deterministic tie-breaking => same optimal path, not merely the
  // same score.
  Xoshiro256 rng(81);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 1 + rng.bounded(80);
    const std::size_t n = 1 + rng.bounded(80);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const Alignment fm = full_matrix_align(a, b, scheme);
    const Alignment fl = fastlsa_align(a, b, scheme, opts(3, 64));
    EXPECT_EQ(fl.score, fm.score);
    EXPECT_EQ(fl.gapped_a, fm.gapped_a) << "m=" << m << " n=" << n;
    EXPECT_EQ(fl.gapped_b, fm.gapped_b);
  }
}

TEST(FastLsa, EmptyAndSingleResidueInputs) {
  const SubstitutionMatrix m = scoring::dna(1, -1);
  const ScoringScheme scheme(m, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  const Sequence one(Alphabet::dna(), "A");
  EXPECT_EQ(fastlsa_align(empty, empty, scheme).score, 0);
  EXPECT_EQ(fastlsa_align(acg, empty, scheme).score, -6);
  EXPECT_EQ(fastlsa_align(empty, acg, scheme).score, -6);
  EXPECT_EQ(fastlsa_align(one, one, scheme).score, 1);
  EXPECT_EQ(fastlsa_align(one, acg, scheme, opts(2, 16)).score, -3);
}

TEST(FastLsa, ExtremeAspectRatios) {
  Xoshiro256 rng(82);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (const auto& [m, n] :
       {std::pair<std::size_t, std::size_t>{1, 500}, {500, 1}, {2, 300},
        {300, 2}, {5, 200}}) {
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    EXPECT_EQ(fastlsa_align(a, b, scheme, opts(4, 64)).score,
              full_matrix_score(a, b, scheme))
        << m << "x" << n;
  }
}

TEST(FastLsa, OptionValidation) {
  const Sequence a(Alphabet::dna(), "ACGT");
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -2);
  EXPECT_THROW(fastlsa_align(a, a, scheme, opts(1, 1024)),
               std::invalid_argument);
  EXPECT_THROW(fastlsa_align(a, a, scheme, opts(4, 8)),
               std::invalid_argument);
  const ScoringScheme affine(m, -5, -1);
  EXPECT_THROW(fastlsa_align(a, a, affine), std::invalid_argument);
}

TEST(FastLsa, OperationsWithinPaperBound) {
  // Paper Theorem (Eq. 35, P = 1): total cells <= m*n*(k/(k-1))^2, with a
  // small additive slack for boundary effects on modest sizes.
  Xoshiro256 rng(83);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 600, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (unsigned k : {2u, 3u, 4u, 8u}) {
    FastLsaStats stats;
    fastlsa_align(pair.a, pair.b, scheme, opts(k, 1024), &stats);
    const double bound = model::sequential_ops_bound(pair.a.size(),
                                                     pair.b.size(), k);
    EXPECT_LE(static_cast<double>(stats.counters.total_cells()),
              bound * 1.05)
        << "k=" << k;
    // And it always does at least the FM work.
    EXPECT_GE(stats.counters.total_cells(),
              static_cast<std::uint64_t>(pair.a.size()) * pair.b.size());
  }
}

TEST(FastLsa, LargerKMeansFewerRecomputations) {
  Xoshiro256 rng(84);
  const Sequence a = random_sequence(Alphabet::protein(), 500, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 500, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  std::uint64_t cells_k2 = 0, cells_k16 = 0;
  {
    FastLsaStats stats;
    fastlsa_align(a, b, scheme, opts(2, 256), &stats);
    cells_k2 = stats.counters.total_cells();
  }
  {
    FastLsaStats stats;
    fastlsa_align(a, b, scheme, opts(16, 256), &stats);
    cells_k16 = stats.counters.total_cells();
  }
  EXPECT_LT(cells_k16, cells_k2);
}

TEST(FastLsa, QuadraticSpaceExtremeDoesNoExtraWork) {
  // With a base-case buffer holding the whole DPM, FastLSA *is* the FM
  // algorithm: exactly m*n cells.
  Xoshiro256 rng(85);
  const Sequence a = random_sequence(Alphabet::protein(), 100, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 90, rng);
  FastLsaStats stats;
  fastlsa_align(a, b, ScoringScheme::paper_default(), opts(8, 1u << 20),
                &stats);
  EXPECT_EQ(stats.counters.total_cells(), 100u * 90u);
  EXPECT_EQ(stats.base_case_invocations, 1u);
  EXPECT_EQ(stats.recursive_splits, 0u);
}

TEST(FastLsa, StatsArePopulated) {
  Xoshiro256 rng(86);
  const Sequence a = random_sequence(Alphabet::protein(), 400, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 380, rng);
  FastLsaStats stats;
  fastlsa_align(a, b, ScoringScheme::paper_default(), opts(4, 512), &stats);
  EXPECT_GT(stats.recursive_splits, 0u);
  EXPECT_GT(stats.base_case_invocations, 1u);
  EXPECT_GT(stats.grid_allocations, 0u);
  EXPECT_GT(stats.max_recursion_depth, 0u);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_GT(stats.counters.traceback_steps, 0u);
}

TEST(FastLsa, LinearSpaceIsMuchSmallerThanQuadratic) {
  Xoshiro256 rng(87);
  const std::size_t len = 1200;
  const Sequence a = random_sequence(Alphabet::protein(), len, rng);
  const Sequence b = random_sequence(Alphabet::protein(), len, rng);
  FastLsaStats stats;
  fastlsa_align(a, b, ScoringScheme::paper_default(), opts(8, 4096), &stats);
  const std::size_t quadratic = (len + 1) * (len + 1) * sizeof(Score);
  // Linear-space configuration stays far below the full matrix.
  EXPECT_LT(stats.peak_bytes, quadratic / 10);
}

TEST(FastLsa, ScoreOnlyHelperAgrees) {
  Xoshiro256 rng(88);
  const Sequence a = random_sequence(Alphabet::protein(), 150, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 140, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  EXPECT_EQ(fastlsa_score(a, b, scheme),
            full_matrix_score(a, b, scheme));
}

// The central property sweep: FastLSA == FM score for every (k, BM)
// combination on random homologous pairs.
struct FastLsaParam {
  unsigned k;
  std::size_t base_cells;
};

class FastLsaKBm : public ::testing::TestWithParam<FastLsaParam> {};

TEST_P(FastLsaKBm, MatchesFullMatrixScore) {
  const FastLsaParam param = GetParam();
  Xoshiro256 rng(param.k * 7919 + param.base_cells);
  MutationModel model;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t len = 40 + rng.bounded(160);
    const SequencePair pair =
        homologous_pair(Alphabet::protein(), len, model, rng);
    const ScoringScheme& scheme = ScoringScheme::paper_default();
    const Alignment aln = fastlsa_align(pair.a, pair.b, scheme,
                                        opts(param.k, param.base_cells));
    EXPECT_EQ(aln.score, full_matrix_score(pair.a, pair.b, scheme))
        << "k=" << param.k << " bm=" << param.base_cells << " len=" << len;
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::protein()), aln.score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KBmGrid, FastLsaKBm,
    ::testing::Values(FastLsaParam{2, 16}, FastLsaParam{2, 256},
                      FastLsaParam{3, 16}, FastLsaParam{3, 1024},
                      FastLsaParam{4, 64}, FastLsaParam{5, 100},
                      FastLsaParam{8, 16}, FastLsaParam{8, 4096},
                      FastLsaParam{13, 64}, FastLsaParam{16, 256},
                      FastLsaParam{32, 1024}, FastLsaParam{64, 16}),
    [](const ::testing::TestParamInfo<FastLsaParam>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_bm" +
             std::to_string(param_info.param.base_cells);
    });

}  // namespace
}  // namespace flsa
