// Tests for the benchmark workload suite and timing helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "benchlib/results.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"

namespace flsa {
namespace {

TEST(Workloads, DeterministicAcrossCalls) {
  const bench::Workload w = bench::sized_workload(500);
  const SequencePair p1 = w.make();
  const SequencePair p2 = w.make();
  EXPECT_EQ(p1.a.to_string(), p2.a.to_string());
  EXPECT_EQ(p1.b.to_string(), p2.b.to_string());
}

TEST(Workloads, ParentLengthIsExact) {
  for (std::size_t len : {100u, 1000u}) {
    const SequencePair pair = bench::sized_workload(len).make();
    EXPECT_EQ(pair.a.size(), len);
    EXPECT_NEAR(static_cast<double>(pair.b.size()),
                static_cast<double>(len), 0.3 * static_cast<double>(len));
  }
}

TEST(Workloads, SuiteRespectsMaxLength) {
  const auto suite = bench::standard_suite(2000);
  ASSERT_FALSE(suite.empty());
  for (const auto& w : suite) EXPECT_LE(w.length, 2000u);
  EXPECT_EQ(suite.back().length, 2000u);
}

TEST(Workloads, ProteinAndDnaSchemes) {
  const bench::Workload protein = bench::sized_workload(100, true);
  EXPECT_EQ(protein.scheme().matrix().name(), "mdm78");
  const bench::Workload dna = bench::sized_workload(100, false);
  EXPECT_EQ(dna.scheme().matrix().name(), "dna");
  const SequencePair pair = dna.make();
  EXPECT_EQ(&pair.a.alphabet(), &Alphabet::dna());
}

TEST(Workloads, DifferentSeedsDifferentPairs) {
  const SequencePair p1 = bench::sized_workload(200, true, 1).make();
  const SequencePair p2 = bench::sized_workload(200, true, 2).make();
  EXPECT_NE(p1.a.to_string(), p2.a.to_string());
}

TEST(Runner, TimeRunsExecutesExactly) {
  int calls = 0;
  const Summary s = bench::time_runs([&] { ++calls; }, /*reps=*/4,
                                     /*warmup=*/2);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(s.n, 4u);
  EXPECT_GE(s.min, 0.0);
}

TEST(CsvSink, DisabledWithoutEnvironment) {
  unsetenv("FLSA_BENCH_CSV_DIR");
  bench::CsvSink sink("unit", {"a", "b"});
  EXPECT_FALSE(sink.enabled());
  sink.row({"1", "2"});  // must be a harmless no-op
}

TEST(CsvSink, WritesFileWhenEnabled) {
  const std::string dir = ::testing::TempDir();
  setenv("FLSA_BENCH_CSV_DIR", dir.c_str(), 1);
  {
    bench::CsvSink sink("unit", {"x", "y"});
    ASSERT_TRUE(sink.enabled());
    sink.row({"1", "two"});
    sink.row({"3", "has,comma"});
  }
  unsetenv("FLSA_BENCH_CSV_DIR");
  std::ifstream in(dir + "/unit.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,two");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has,comma\"");
}

TEST(CsvSink, UnwritableDirectoryDegradesToNoop) {
  setenv("FLSA_BENCH_CSV_DIR", "/nonexistent-dir-xyz", 1);
  bench::CsvSink sink("unit", {"a"});
  EXPECT_FALSE(sink.enabled());
  unsetenv("FLSA_BENCH_CSV_DIR");
}

TEST(Runner, ThroughputFormatting) {
  EXPECT_EQ(bench::throughput(2e9, 1.0), "2.0 Gcell/s");
  EXPECT_EQ(bench::throughput(5e6, 1.0), "5.0 Mcell/s");
  EXPECT_EQ(bench::throughput(1500, 1.0), "1.5 kcell/s");
}

}  // namespace
}  // namespace flsa
