// Randomized cross-validation "fuzz" suite: hundreds of small random
// problems where every algorithm in the library must agree with every
// other, across random alphabets, matrices, gap penalties, and shapes.
// This is the broadest net for boundary/tie-breaking bugs.
#include <gtest/gtest.h>

#include "flsa/flsa.hpp"

namespace flsa {
namespace {

/// A random scoring scheme over a random small alphabet.
struct RandomScenario {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<SubstitutionMatrix> matrix;
  Score gap;

  static RandomScenario make(Xoshiro256& rng) {
    RandomScenario s;
    static const char* kLetterSets[] = {"AB", "ACGT", "ABCDEFGH",
                                        "ARNDCQEGHILKMFPSTWYV"};
    const char* letters = kLetterSets[rng.bounded(4)];
    s.alphabet = std::make_shared<Alphabet>(letters, "fuzz");
    s.matrix = std::make_shared<SubstitutionMatrix>(*s.alphabet, "fuzz");
    for (Residue x = 0; x < s.alphabet->size(); ++x) {
      for (Residue y = x; y < s.alphabet->size(); ++y) {
        // Diagonal biased positive, off-diagonal biased negative, but both
        // signs possible everywhere: exercises unusual landscapes.
        const Score base = x == y ? static_cast<Score>(rng.bounded(15))
                                  : static_cast<Score>(rng.bounded(13)) - 9;
        s.matrix->set_symmetric(x, y, base);
      }
    }
    s.gap = -static_cast<Score>(rng.bounded(12));
    return s;
  }

  ScoringScheme scheme() const { return ScoringScheme(*matrix, gap); }
};

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, AllGlobalAlgorithmsAgree) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  for (int scenario = 0; scenario < 4; ++scenario) {
    const RandomScenario s = RandomScenario::make(rng);
    const ScoringScheme scheme = s.scheme();
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t m = rng.bounded(45);
      const std::size_t n = rng.bounded(45);
      const Sequence a = random_sequence(*s.alphabet, m, rng);
      const Sequence b = random_sequence(*s.alphabet, n, rng);

      const Alignment fm = full_matrix_align(a, b, scheme);
      ASSERT_EQ(score_alignment(fm, scheme, *s.alphabet), fm.score);

      // Score-only engines.
      ASSERT_EQ(global_score_linear(a.residues(), b.residues(), scheme),
                fm.score);
      ASSERT_EQ(
          global_score_antidiagonal(a.residues(), b.residues(), scheme),
          fm.score);
      ASSERT_EQ(global_score_profiled(a.residues(), b.residues(), scheme),
                fm.score);

      // Packed FM: identical path.
      const Alignment packed = packed_full_matrix_align(a, b, scheme);
      ASSERT_EQ(packed.gapped_a, fm.gapped_a);
      ASSERT_EQ(packed.gapped_b, fm.gapped_b);

      // Hirschberg / FastLSA / the score-only dispatch layer, under both
      // sweep kernels: identical scores AND identical paths either way.
      HirschbergOptions hopts;
      hopts.base_case_cells = 2 + rng.bounded(64);
      FastLsaOptions fopts;
      fopts.k = 2 + static_cast<unsigned>(rng.bounded(9));
      fopts.base_case_cells = 16 + rng.bounded(200);
      for (const KernelKind kind :
           {KernelKind::kScalar, KernelKind::kSimd, KernelKind::kInt16,
            KernelKind::kInt8}) {
        ASSERT_EQ(global_score_linear(kind, a.residues(), b.residues(),
                                      scheme),
                  fm.score)
            << to_string(kind);
        hopts.kernel = kind;
        // Hirschberg guarantees the optimal score (its split tie-breaking
        // may pick a different co-optimal path than FM).
        ASSERT_EQ(hirschberg_align(a, b, scheme, hopts).score, fm.score)
            << to_string(kind);
        fopts.kernel = kind;
        const Alignment fl = fastlsa_align(a, b, scheme, fopts);
        ASSERT_EQ(fl.score, fm.score)
            << "k=" << fopts.k << " bm=" << fopts.base_case_cells
            << " m=" << m << " n=" << n << " kernel=" << to_string(kind);
        ASSERT_EQ(fl.gapped_a, fm.gapped_a) << to_string(kind);
        ASSERT_EQ(fl.gapped_b, fm.gapped_b) << to_string(kind);
        // Score-bound pruning is admissible: same optimal score and the
        // same traceback as the exact sweep, on every kernel tier.
        FastLsaOptions popts_prune = fopts;
        popts_prune.prune = true;
        const Alignment pruned = fastlsa_align(a, b, scheme, popts_prune);
        ASSERT_EQ(pruned.score, fm.score) << "prune/" << to_string(kind);
        ASSERT_EQ(pruned.gapped_a, fm.gapped_a)
            << "prune/" << to_string(kind);
        ASSERT_EQ(pruned.gapped_b, fm.gapped_b)
            << "prune/" << to_string(kind);
        // Parallel FastLSA: same alignment, tile wavefront, both kernels,
        // all three schedulers (first trial only; the tiny problems make
        // threads pure overhead).
        if (trial == 0) {
          for (SchedulerKind sched : {SchedulerKind::kBarrierStaged,
                                      SchedulerKind::kDependencyCounter,
                                      SchedulerKind::kWorkStealing}) {
            ParallelOptions popts;
            popts.threads = 2;
            popts.scheduler = sched;
            const Alignment par =
                parallel_fastlsa_align(a, b, scheme, fopts, popts);
            ASSERT_EQ(par.score, fm.score)
                << to_string(kind) << "/" << to_string(sched);
            ASSERT_EQ(par.gapped_a, fm.gapped_a)
                << to_string(kind) << "/" << to_string(sched);
          }
        }
      }

      // Banded with a full band.
      ASSERT_EQ(banded_score(a, b, scheme, std::max<std::size_t>(
                                               1, std::max(m, n))),
                fm.score);

      // Co-optimal analysis: same score, count >= 1, first enumerated
      // path identical to the single-path traceback.
      const CoOptimalAnalysis co = count_optimal_paths(a, b, scheme);
      ASSERT_EQ(co.score, fm.score);
      ASSERT_GE(co.path_count, 1u);
      const auto first = enumerate_optimal_alignments(a, b, scheme, 1);
      ASSERT_EQ(first.size(), 1u);
      ASSERT_EQ(first[0].gapped_a, fm.gapped_a);
      ASSERT_EQ(first[0].gapped_b, fm.gapped_b);
    }
  }
}

TEST_P(FuzzSweep, AffineAlgorithmsAgree) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 40503u + 5);
  for (int scenario = 0; scenario < 3; ++scenario) {
    const RandomScenario s = RandomScenario::make(rng);
    const Score open = -static_cast<Score>(rng.bounded(12));
    const Score extend = -static_cast<Score>(rng.bounded(5));
    const ScoringScheme scheme(*s.matrix, open, extend);
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t m = rng.bounded(35);
      const std::size_t n = rng.bounded(35);
      const Sequence a = random_sequence(*s.alphabet, m, rng);
      const Sequence b = random_sequence(*s.alphabet, n, rng);

      const Score expected =
          global_score_affine(a.residues(), b.residues(), scheme);
      const Alignment fm = full_matrix_align_affine(a, b, scheme);
      ASSERT_EQ(fm.score, expected);
      ASSERT_EQ(score_alignment(fm, scheme, *s.alphabet), expected);

      HirschbergOptions hopts;
      hopts.base_case_cells = 2 + rng.bounded(64);
      FastLsaOptions fopts;
      fopts.k = 2 + static_cast<unsigned>(rng.bounded(7));
      fopts.base_case_cells = 16 + rng.bounded(150);
      for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kSimd}) {
        hopts.kernel = kind;
        ASSERT_EQ(hirschberg_align_affine(a, b, scheme, hopts).score,
                  expected)
            << "open=" << open << " extend=" << extend << " m=" << m
            << " n=" << n << " kernel=" << to_string(kind);
        fopts.kernel = kind;
        ASSERT_EQ(fastlsa_align_affine(a, b, scheme, fopts).score, expected)
            << "k=" << fopts.k << " bm=" << fopts.base_case_cells
            << " kernel=" << to_string(kind);
      }
    }
  }
}

TEST_P(FuzzSweep, LocalAndSemiGlobalAgree) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 69069u + 3);
  for (int scenario = 0; scenario < 3; ++scenario) {
    const RandomScenario s = RandomScenario::make(rng);
    if (s.gap == 0) continue;  // local/semiglobal need a real gap cost
    const ScoringScheme scheme = s.scheme();
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t m = 1 + rng.bounded(30);
      const std::size_t n = 1 + rng.bounded(30);
      const Sequence a = random_sequence(*s.alphabet, m, rng);
      const Sequence b = random_sequence(*s.alphabet, n, rng);

      ASSERT_EQ(local_align(a, b, scheme).score,
                local_align_full_matrix(a, b, scheme).score);
      ASSERT_EQ(fitting_align(a, b, scheme).score,
                fitting_align_full_matrix(a, b, scheme).score);
      ASSERT_EQ(overlap_align(a, b, scheme).score,
                overlap_align_full_matrix(a, b, scheme).score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 12));

// The paper's Figure 1 worked example (MDM78, optimal score 82) as a golden
// case through every engine x kernel combination (every registered tier,
// including the saturating narrow kernels).
TEST(FuzzGolden, PaperExampleUnderEveryKernel) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  ASSERT_EQ(full_matrix_align(a, b, scheme).score, 82);
  for (const KernelInfo& info : kernel_registry()) {
    const KernelKind kind = info.kind;
    ASSERT_EQ(global_score_linear(kind, a.residues(), b.residues(), scheme),
              82)
        << to_string(kind);
    HirschbergOptions hopts;
    hopts.base_case_cells = 2;
    hopts.kernel = kind;
    ASSERT_EQ(hirschberg_align(a, b, scheme, hopts).score, 82)
        << to_string(kind);
    FastLsaOptions fopts;
    fopts.k = 2;
    fopts.base_case_cells = 16;
    fopts.kernel = kind;
    FastLsaStats stats;
    ASSERT_EQ(fastlsa_align(a, b, scheme, fopts, &stats).score, 82)
        << to_string(kind);
    ASSERT_EQ(stats.kernel_used, resolve_kernel(kind));
    for (SchedulerKind sched : {SchedulerKind::kBarrierStaged,
                                SchedulerKind::kDependencyCounter,
                                SchedulerKind::kWorkStealing}) {
      ParallelOptions popts;
      popts.threads = 2;
      popts.scheduler = sched;
      ASSERT_EQ(parallel_fastlsa_align(a, b, scheme, fopts, popts).score,
                82)
          << to_string(kind) << "/" << to_string(sched);
    }
  }
}

}  // namespace
}  // namespace flsa
