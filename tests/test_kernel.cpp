// Tests for the boundary-cache DP sweep kernel, the shared FindScore
// primitive of Hirschberg and FastLSA.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme dna_scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(Kernel, GlobalBoundaryIsGapRamp) {
  const ScoringScheme scheme = dna_scheme();
  std::vector<Score> boundary(5);
  init_global_boundary_linear(scheme, boundary);
  EXPECT_EQ(boundary, (std::vector<Score>{0, -6, -12, -18, -24}));
}

TEST(Kernel, PaperExampleScore) {
  // DPM of the paper's Figure 1: optimal score 82 at the corner.
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  EXPECT_EQ(global_score_linear(a.residues(), b.residues(),
                                ScoringScheme::paper_default()),
            82);
}

TEST(Kernel, PaperExampleIsSymmetric) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  EXPECT_EQ(global_score_linear(b.residues(), a.residues(),
                                ScoringScheme::paper_default()),
            82);
}

TEST(Kernel, EmptySequences) {
  const ScoringScheme scheme = dna_scheme();
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acgt(Alphabet::dna(), "ACGT");
  EXPECT_EQ(global_score_linear(empty.residues(), empty.residues(), scheme),
            0);
  // Aligning against empty = all gaps.
  EXPECT_EQ(global_score_linear(acgt.residues(), empty.residues(), scheme),
            -24);
  EXPECT_EQ(global_score_linear(empty.residues(), acgt.residues(), scheme),
            -24);
}

TEST(Kernel, SingleResiduePairs) {
  const ScoringScheme scheme = dna_scheme();
  const Sequence a(Alphabet::dna(), "A");
  const Sequence c(Alphabet::dna(), "C");
  EXPECT_EQ(global_score_linear(a.residues(), a.residues(), scheme), 5);
  // max(mismatch -4, two gaps -12) = -4.
  EXPECT_EQ(global_score_linear(a.residues(), c.residues(), scheme), -4);
}

TEST(Kernel, LastRowMatchesFullMatrixRow) {
  Xoshiro256 rng(11);
  const Sequence a = random_sequence(Alphabet::dna(), 37, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 53, rng);
  const ScoringScheme scheme = dna_scheme();

  const std::vector<Score> last = last_row_linear(a.residues(),
                                                  b.residues(), scheme);

  std::vector<Score> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left,
                          dpm);
  for (std::size_t c = 0; c <= b.size(); ++c) {
    EXPECT_EQ(last[c], dpm(a.size(), c)) << "column " << c;
  }
}

TEST(Kernel, SweepOutputsMatchFullMatrixBoundaries) {
  Xoshiro256 rng(12);
  const Sequence a = random_sequence(Alphabet::protein(), 19, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 23, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();

  std::vector<Score> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);

  std::vector<Score> bottom(b.size() + 1), right(a.size() + 1);
  sweep_rectangle_linear(a.residues(), b.residues(), scheme, top, left,
                         bottom, right);

  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left,
                          dpm);
  for (std::size_t c = 0; c <= b.size(); ++c) {
    EXPECT_EQ(bottom[c], dpm(a.size(), c));
  }
  for (std::size_t r = 0; r <= a.size(); ++r) {
    EXPECT_EQ(right[r], dpm(r, b.size()));
  }
}

TEST(Kernel, SweepInPlaceAliasingTopAsBottom) {
  Xoshiro256 rng(13);
  const Sequence a = random_sequence(Alphabet::dna(), 8, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 11, rng);
  const ScoringScheme scheme = dna_scheme();

  std::vector<Score> row(b.size() + 1), left(a.size() + 1);
  init_global_boundary_linear(scheme, row);
  init_global_boundary_linear(scheme, left);
  const std::vector<Score> expected =
      last_row_linear(a.residues(), b.residues(), scheme);
  sweep_rectangle_linear(a.residues(), b.residues(), scheme, row, left, row,
                         {});
  EXPECT_EQ(row, expected);
}

TEST(Kernel, CompositionOfSweepsEqualsOneSweep) {
  // Sweeping the top half then the bottom half with the intermediate row
  // as cache must equal one full sweep — the invariant FastLSA's grid
  // caching rests on.
  Xoshiro256 rng(14);
  const Sequence a = random_sequence(Alphabet::protein(), 30, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 21, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();

  const std::vector<Score> whole =
      last_row_linear(a.residues(), b.residues(), scheme);

  const std::size_t mid = 13;
  std::vector<Score> row(b.size() + 1), left_top(mid + 1),
      left_bottom(a.size() - mid + 1);
  init_global_boundary_linear(scheme, row);
  init_global_boundary_linear(scheme, left_top);
  sweep_rectangle_linear(a.residues().subspan(0, mid), b.residues(), scheme,
                         row, left_top, row, {});
  // Left boundary of the bottom half: continue the gap ramp.
  for (std::size_t r = 0; r < left_bottom.size(); ++r) {
    left_bottom[r] =
        static_cast<Score>(mid + r) * scheme.gap_extend();
  }
  sweep_rectangle_linear(a.residues().subspan(mid), b.residues(), scheme,
                         row, left_bottom, row, {});
  EXPECT_EQ(row, whole);
}

TEST(Kernel, CountersAccumulateCells) {
  Xoshiro256 rng(15);
  const Sequence a = random_sequence(Alphabet::dna(), 10, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 20, rng);
  DpCounters counters;
  global_score_linear(a.residues(), b.residues(), dna_scheme(), &counters);
  EXPECT_EQ(counters.cells_scored, 200u);
  EXPECT_EQ(counters.cells_stored, 0u);
  EXPECT_EQ(counters.total_cells(), 200u);
}

TEST(Kernel, RejectsMismatchedBoundaries) {
  const Sequence a(Alphabet::dna(), "ACG");
  const Sequence b(Alphabet::dna(), "AC");
  const ScoringScheme scheme = dna_scheme();
  std::vector<Score> top(3), left(4), bottom(3);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  std::vector<Score> bad_top(2);
  EXPECT_THROW(sweep_rectangle_linear(a.residues(), b.residues(), scheme,
                                      bad_top, left, bottom, {}),
               std::invalid_argument);
  std::vector<Score> corner_mismatch = top;
  corner_mismatch[0] = 99;
  EXPECT_THROW(sweep_rectangle_linear(a.residues(), b.residues(), scheme,
                                      corner_mismatch, left, bottom, {}),
               std::invalid_argument);
}

TEST(Kernel, RejectsAffineScheme) {
  const Sequence a(Alphabet::dna(), "AC");
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  EXPECT_THROW(
      global_score_linear(a.residues(), a.residues(), affine),
      std::invalid_argument);
}

// Property sweep: random rectangles of many shapes — kernel score equals
// the full-matrix corner value.
class KernelShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KernelShapes, ScoreMatchesFullMatrix) {
  const auto [m, n] = GetParam();
  Xoshiro256 rng(m * 1000 + n);
  const Sequence a = random_sequence(Alphabet::protein(), m, rng);
  const Sequence b = random_sequence(Alphabet::protein(), n, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  DpCounters fm_counters;
  const Score fm = full_matrix_score(a, b, scheme, &fm_counters);
  EXPECT_EQ(global_score_linear(a.residues(), b.residues(), scheme), fm);
  EXPECT_EQ(fm_counters.cells_stored, static_cast<std::uint64_t>(m) * n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 50},
                      std::pair<std::size_t, std::size_t>{50, 1},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{17, 17},
                      std::pair<std::size_t, std::size_t>{31, 64},
                      std::pair<std::size_t, std::size_t>{64, 31},
                      std::pair<std::size_t, std::size_t>{100, 100}));

}  // namespace
}  // namespace flsa
