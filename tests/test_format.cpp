// Tests for the BLAST-style and TSV alignment report formats.
#include <gtest/gtest.h>

#include "dp/format.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

Alignment paper_alignment() {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  return full_matrix_align(a, b, ScoringScheme::paper_default());
}

TEST(FormatBlast, HeaderCarriesScoreAndIdentity) {
  const std::string text = format_blast(paper_alignment(), "q", "s");
  EXPECT_NE(text.find("Score = 82"), std::string::npos);
  EXPECT_NE(text.find("Identities = 5/9"), std::string::npos);
  EXPECT_NE(text.find("Gaps = 3"), std::string::npos);
  EXPECT_NE(text.find("Query: q"), std::string::npos);
}

TEST(FormatBlast, CoordinatesAreOneBasedAndResidueCounting) {
  const std::string text = format_blast(paper_alignment(), "q", "s", 60);
  // Global alignment of 8 and 7 residues: query spans 1..8, subject 1..7.
  EXPECT_NE(text.find("Query  1"), std::string::npos);
  EXPECT_NE(text.find("  8\n"), std::string::npos);
  EXPECT_NE(text.find("Sbjct  1"), std::string::npos);
  EXPECT_NE(text.find("  7\n"), std::string::npos);
}

TEST(FormatBlast, WrapsAndKeepsCoordinateContinuity) {
  Xoshiro256 rng(231);
  const Sequence s = random_sequence(Alphabet::dna(), 150, rng);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -4);
  const Alignment aln = full_matrix_align(s, s, scheme);
  const std::string text = format_blast(aln, "a", "b", 50);
  // Three chunks: 1-50, 51-100, 101-150.
  EXPECT_NE(text.find("Query  1 "), std::string::npos);
  EXPECT_NE(text.find("Query  51"), std::string::npos);
  EXPECT_NE(text.find("Query  101"), std::string::npos);
  EXPECT_NE(text.find("  150\n"), std::string::npos);
}

TEST(FormatBlast, LocalAlignmentUsesRegionOffsets) {
  const Sequence a(Alphabet::dna(), "TTTTACGTACGTTTTT");
  const Sequence b(Alphabet::dna(), "GGGGGACGTACGGGGG");
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -6);
  const Alignment aln = local_align_full_matrix(a, b, scheme);
  const std::string text = format_blast(aln, "a", "b");
  // The local region starts at a[4] (1-based 5) and b[5] (1-based 6).
  EXPECT_NE(text.find("Query  " + std::to_string(aln.a_begin + 1)),
            std::string::npos);
  EXPECT_NE(text.find("Sbjct  " + std::to_string(aln.b_begin + 1)),
            std::string::npos);
}

TEST(FormatTsv, FieldsRoundTrip) {
  const Alignment aln = paper_alignment();
  const std::string line = format_tsv(aln, "query1", "subject1");
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (std::getline(in, field, '\t')) fields.push_back(field);
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(fields[0], "query1");
  EXPECT_EQ(fields[1], "subject1");
  EXPECT_EQ(fields[2], "82");
  EXPECT_EQ(fields[4], "9");   // alignment length
  EXPECT_EQ(fields[5], "3");   // gaps
  EXPECT_EQ(fields[7], "8");   // a_end
  EXPECT_EQ(fields[10], aln.cigar());
  // Header arity matches.
  std::size_t header_fields = 1;
  for (char c : tsv_header()) header_fields += (c == '\t');
  EXPECT_EQ(header_fields, fields.size());
}

TEST(FormatBlast, RejectsSillyWidth) {
  EXPECT_THROW(format_blast(paper_alignment(), "q", "s", 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
