// Tests for Parallel FastLSA: bit-identical results to the sequential
// algorithm across thread counts, schedulers, and tilings.
#include <gtest/gtest.h>

#include "core/arena.hpp"
#include "core/fastlsa.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "parallel/parallel_fastlsa.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

FastLsaOptions opts(unsigned k, std::size_t base_cells) {
  FastLsaOptions o;
  o.k = k;
  o.base_case_cells = base_cells;
  return o;
}

TEST(ParallelFastLsa, OptionResolutionDefaults) {
  ParallelOptions p;
  p.threads = 4;
  const ParallelOptions r = p.resolved(/*k=*/8);
  EXPECT_EQ(r.threads, 4u);
  EXPECT_EQ(r.tiles_per_block, 1u);  // 8 blocks already exceed 2*4 tiles
  EXPECT_EQ(r.base_case_tiles, 16u);
  ParallelOptions small_k;
  small_k.threads = 8;
  EXPECT_EQ(small_k.resolved(2).tiles_per_block, 8u);  // 2*8/2
}

TEST(ParallelFastLsa, MatchesSequentialAlignmentExactly) {
  Xoshiro256 rng(111);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 300, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment seq = fastlsa_align(pair.a, pair.b, scheme, opts(4, 256));
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    ParallelOptions parallel;
    parallel.threads = threads;
    const Alignment par = parallel_fastlsa_align(pair.a, pair.b, scheme,
                                                 opts(4, 256), parallel);
    EXPECT_EQ(par.score, seq.score) << "threads=" << threads;
    EXPECT_EQ(par.gapped_a, seq.gapped_a);
    EXPECT_EQ(par.gapped_b, seq.gapped_b);
  }
}

TEST(ParallelFastLsa, AllSchedulersAgree) {
  Xoshiro256 rng(112);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 250, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Score expected = full_matrix_score(pair.a, pair.b, scheme);
  for (SchedulerKind kind : {SchedulerKind::kBarrierStaged,
                             SchedulerKind::kDependencyCounter,
                             SchedulerKind::kWorkStealing}) {
    ParallelOptions parallel;
    parallel.threads = 4;
    parallel.scheduler = kind;
    EXPECT_EQ(parallel_fastlsa_align(pair.a, pair.b, scheme, opts(3, 200),
                                     parallel)
                  .score,
              expected)
        << to_string(kind);
  }
}

TEST(ParallelFastLsa, SchedulersProduceIdenticalAlignments) {
  // Bit-identical alignments (not just scores) across all three policies
  // and against the sequential reference.
  Xoshiro256 rng(117);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 320, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment seq = fastlsa_align(pair.a, pair.b, scheme, opts(4, 256));
  for (SchedulerKind kind : {SchedulerKind::kBarrierStaged,
                             SchedulerKind::kDependencyCounter,
                             SchedulerKind::kWorkStealing}) {
    ParallelOptions parallel;
    parallel.threads = 4;
    parallel.scheduler = kind;
    const Alignment par = parallel_fastlsa_align(pair.a, pair.b, scheme,
                                                 opts(4, 256), parallel);
    EXPECT_EQ(par.score, seq.score) << to_string(kind);
    EXPECT_EQ(par.gapped_a, seq.gapped_a) << to_string(kind);
    EXPECT_EQ(par.gapped_b, seq.gapped_b) << to_string(kind);
  }
}

TEST(ParallelFastLsa, WorkStealingAffineMatchesGotoh) {
  Xoshiro256 rng(118);
  MutationModel model;
  model.extension_prob = 0.7;
  const SequencePair pair =
      homologous_pair(Alphabet::dna(), 240, model, rng);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  const Score expected =
      global_score_affine(pair.a.residues(), pair.b.residues(), scheme);
  ParallelOptions parallel;
  parallel.threads = 4;
  parallel.scheduler = SchedulerKind::kWorkStealing;
  const Alignment aln = parallel_fastlsa_align_affine(
      pair.a, pair.b, scheme, opts(3, 128), parallel);
  EXPECT_EQ(aln.score, expected);
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
}

TEST(ParallelFastLsa, WorkspaceReuseAcrossRunsStaysCorrect) {
  // The same FastLsaWorkspace recycled across runs of different shapes
  // and schedulers must never change results — recycled buffers carry
  // stale data by design.
  Xoshiro256 rng(119);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  FastLsaWorkspace workspace;
  FastLsaOptions o = opts(3, 200);
  o.workspace = &workspace;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t m = 60 + rng.bounded(200);
    const std::size_t n = 60 + rng.bounded(200);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const Score expected = full_matrix_score(a, b, scheme);
    EXPECT_EQ(fastlsa_align(a, b, scheme, o).score, expected);
    ParallelOptions parallel;
    parallel.threads = 3;
    parallel.scheduler = trial % 2 == 0 ? SchedulerKind::kWorkStealing
                                        : SchedulerKind::kDependencyCounter;
    EXPECT_EQ(parallel_fastlsa_align(a, b, scheme, o, parallel).score,
              expected);
  }
}

TEST(ParallelFastLsa, FineTilingStillCorrect) {
  Xoshiro256 rng(113);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::dna(), 200, model, rng);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -6);
  const Score expected = full_matrix_score(pair.a, pair.b, scheme);
  for (std::size_t tiles : {1u, 2u, 5u, 9u}) {
    ParallelOptions parallel;
    parallel.threads = 4;
    parallel.tiles_per_block = tiles;
    parallel.base_case_tiles = tiles * 2;
    EXPECT_EQ(parallel_fastlsa_align(pair.a, pair.b, scheme, opts(2, 400),
                                     parallel)
                  .score,
              expected)
        << "tiles=" << tiles;
  }
}

TEST(ParallelFastLsa, AffineParallelMatchesGotoh) {
  Xoshiro256 rng(114);
  MutationModel model;
  model.extension_prob = 0.7;
  const SequencePair pair =
      homologous_pair(Alphabet::dna(), 220, model, rng);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  const Score expected =
      global_score_affine(pair.a.residues(), pair.b.residues(), scheme);
  ParallelOptions parallel;
  parallel.threads = 4;
  const Alignment aln = parallel_fastlsa_align_affine(
      pair.a, pair.b, scheme, opts(3, 128), parallel);
  EXPECT_EQ(aln.score, expected);
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
}

TEST(ParallelFastLsa, CountersCoverAllWork) {
  // Parallel counters (merged across workers) must equal the sequential
  // run's counters for the same configuration.
  Xoshiro256 rng(115);
  const Sequence a = random_sequence(Alphabet::protein(), 300, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 280, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();

  FastLsaStats seq_stats;
  ParallelOptions seq_like;
  seq_like.threads = 1;
  seq_like.tiles_per_block = 3;
  seq_like.base_case_tiles = 4;
  parallel_fastlsa_align(a, b, scheme, opts(4, 512), seq_like, &seq_stats);

  FastLsaStats par_stats;
  ParallelOptions parallel = seq_like;
  parallel.threads = 4;
  parallel_fastlsa_align(a, b, scheme, opts(4, 512), parallel, &par_stats);

  EXPECT_EQ(par_stats.counters.cells_scored, seq_stats.counters.cells_scored);
  EXPECT_EQ(par_stats.counters.cells_stored, seq_stats.counters.cells_stored);
  EXPECT_EQ(par_stats.counters.traceback_steps,
            seq_stats.counters.traceback_steps);
}

TEST(ParallelFastLsa, StressManySmallRuns) {
  // Exercises pool reuse across many fill/base-case phases.
  Xoshiro256 rng(116);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  ParallelOptions parallel;
  parallel.threads = 3;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t m = 1 + rng.bounded(50);
    const std::size_t n = 1 + rng.bounded(50);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    EXPECT_EQ(
        parallel_fastlsa_align(a, b, scheme, opts(2, 16), parallel).score,
        full_matrix_score(a, b, scheme));
  }
}

}  // namespace
}  // namespace flsa
