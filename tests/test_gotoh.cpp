// Tests for the affine-gap (Gotoh) kernels and full-matrix baseline.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/kernel.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme affine_dna() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -8, -2);
}

TEST(Gotoh, BoundaryInitialization) {
  const ScoringScheme scheme = affine_dna();
  std::vector<AffineCell> row(4);
  init_global_boundary_affine(scheme, row, /*horizontal=*/true);
  EXPECT_EQ(row[0].d, 0);
  EXPECT_EQ(row[0].ix, kNegInf);
  EXPECT_EQ(row[0].iy, kNegInf);
  EXPECT_EQ(row[1].d, -10);  // open -8 + extend -2
  EXPECT_EQ(row[1].iy, -10);
  EXPECT_EQ(row[1].ix, kNegInf);
  EXPECT_EQ(row[3].d, -14);

  std::vector<AffineCell> col(3);
  init_global_boundary_affine(scheme, col, /*horizontal=*/false);
  EXPECT_EQ(col[2].ix, -12);
  EXPECT_EQ(col[2].iy, kNegInf);
}

TEST(Gotoh, SingleGapCostsOpenPlusExtend) {
  const ScoringScheme scheme = affine_dna();
  const Sequence a(Alphabet::dna(), "AC");
  const Sequence b(Alphabet::dna(), "A");
  // Best: align A/A (5), gap C (open -8 + extend -2) = -5.
  EXPECT_EQ(global_score_affine(a.residues(), b.residues(), scheme), -5);
}

TEST(Gotoh, LongGapPreferredOverTwoShortOnes) {
  // With a big open penalty, one long gap beats two short ones: align
  // ACGTACGT vs ACAC — one 4-gap costs open+4*ext; mismatch layouts cost
  // more. Just verify the affine score exceeds the linear-equivalent where
  // each gap residue pays open+ext.
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme affine(m, -8, -1);
  const ScoringScheme linear_equiv(m, -9);
  const Sequence a(Alphabet::dna(), "ACGTACGT");
  const Sequence b(Alphabet::dna(), "ACAC");
  const Score s_affine = global_score_affine(a.residues(), b.residues(),
                                             affine);
  const Score s_linear = global_score_linear(a.residues(), b.residues(),
                                             linear_equiv);
  EXPECT_GT(s_affine, s_linear);
}

TEST(Gotoh, ZeroOpenReducesToLinear) {
  Xoshiro256 rng(41);
  const SubstitutionMatrix m = scoring::dna(3, -2);
  const ScoringScheme affine(m, 0, -4);
  const ScoringScheme linear(m, -4);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    EXPECT_EQ(global_score_affine(a.residues(), b.residues(), affine),
              global_score_linear(a.residues(), b.residues(), linear));
  }
}

TEST(Gotoh, FullMatrixAlignmentScoreMatchesScorePass) {
  Xoshiro256 rng(42);
  const ScoringScheme scheme = affine_dna();
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 1 + rng.bounded(25);
    const std::size_t n = 1 + rng.bounded(25);
    const Sequence a = random_sequence(Alphabet::dna(), m, rng);
    const Sequence b = random_sequence(Alphabet::dna(), n, rng);
    const Alignment aln = full_matrix_align_affine(a, b, scheme);
    EXPECT_EQ(aln.score,
              global_score_affine(a.residues(), b.residues(), scheme));
    // Independent rescoring of the produced alignment.
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

TEST(Gotoh, AffineScoreNeverExceedsLinearWithSamePerResidueCost) {
  // A linear scheme with gap = open + extend dominates: every affine gap
  // run of length L costs open + L*ext >= L*(open+ext) is false in
  // general, but for L = 1 they agree and for L > 1 affine is cheaper, so
  // affine score >= the linear score with per-residue (open + extend).
  Xoshiro256 rng(43);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme affine(m, -6, -2);
  const ScoringScheme linear(m, -8);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 5 + rng.bounded(40), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 5 + rng.bounded(40), rng);
    EXPECT_GE(global_score_affine(a.residues(), b.residues(), affine),
              global_score_linear(a.residues(), b.residues(), linear));
  }
}

TEST(Gotoh, SweepBottomRowMatchesFullMatrix) {
  Xoshiro256 rng(44);
  const ScoringScheme scheme = affine_dna();
  const Sequence a = random_sequence(Alphabet::dna(), 18, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 27, rng);
  std::vector<AffineCell> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_affine(scheme, top, true);
  init_global_boundary_affine(scheme, left, false);

  std::vector<AffineCell> bottom(b.size() + 1), right(a.size() + 1);
  sweep_rectangle_affine(a.residues(), b.residues(), scheme, top, left,
                         bottom, right);
  Matrix2D<AffineCell> dpm;
  fill_full_matrix_affine(a.residues(), b.residues(), scheme, top, left,
                          dpm);
  for (std::size_t c = 0; c <= b.size(); ++c) {
    EXPECT_EQ(bottom[c], dpm(a.size(), c));
  }
  for (std::size_t r = 0; r <= a.size(); ++r) {
    EXPECT_EQ(right[r], dpm(r, b.size()));
  }
}

TEST(Gotoh, CompositionAcrossCachedRowMatchesWholeSweep) {
  Xoshiro256 rng(45);
  const ScoringScheme scheme = affine_dna();
  const Sequence a = random_sequence(Alphabet::dna(), 20, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 15, rng);

  std::vector<AffineCell> whole(b.size() + 1), left(a.size() + 1);
  init_global_boundary_affine(scheme, whole, true);
  init_global_boundary_affine(scheme, left, false);
  sweep_rectangle_affine(a.residues(), b.residues(), scheme, whole, left,
                         whole, {});

  const std::size_t mid = 8;
  std::vector<AffineCell> row(b.size() + 1);
  init_global_boundary_affine(scheme, row, true);
  std::vector<AffineCell> left_top(left.begin(), left.begin() + mid + 1);
  sweep_rectangle_affine(a.residues().subspan(0, mid), b.residues(), scheme,
                         row, left_top, row, {});
  std::vector<AffineCell> left_bottom(left.begin() + mid, left.end());
  sweep_rectangle_affine(a.residues().subspan(mid), b.residues(), scheme,
                         row, left_bottom, row, {});
  for (std::size_t c = 0; c <= b.size(); ++c) {
    EXPECT_EQ(row[c], whole[c]) << "column " << c;
  }
}

TEST(Gotoh, RegionFillMatchesWholeFill) {
  Xoshiro256 rng(46);
  const ScoringScheme scheme = affine_dna();
  const Sequence a = random_sequence(Alphabet::dna(), 10, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 13, rng);
  std::vector<AffineCell> top(b.size() + 1), left(a.size() + 1);
  init_global_boundary_affine(scheme, top, true);
  init_global_boundary_affine(scheme, left, false);

  Matrix2D<AffineCell> whole;
  fill_full_matrix_affine(a.residues(), b.residues(), scheme, top, left,
                          whole);

  Matrix2D<AffineCell> tiled(a.size() + 1, b.size() + 1);
  std::copy(top.begin(), top.end(), tiled.row(0));
  for (std::size_t r = 0; r <= a.size(); ++r) tiled(r, 0) = left[r];
  fill_matrix_region_affine(a.residues(), b.residues(), scheme, tiled, 1, 1,
                            4, b.size());
  fill_matrix_region_affine(a.residues(), b.residues(), scheme, tiled, 5, 1,
                            a.size() - 4, b.size());
  for (std::size_t r = 0; r <= a.size(); ++r) {
    for (std::size_t c = 0; c <= b.size(); ++c) {
      EXPECT_EQ(tiled(r, c), whole(r, c));
    }
  }
}

TEST(Gotoh, CountersTrackWork) {
  Xoshiro256 rng(47);
  const ScoringScheme scheme = affine_dna();
  const Sequence a = random_sequence(Alphabet::dna(), 7, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 9, rng);
  DpCounters counters;
  global_score_affine(a.residues(), b.residues(), scheme, &counters);
  EXPECT_EQ(counters.cells_scored, 63u);
  counters = {};
  full_matrix_align_affine(a, b, scheme, &counters);
  EXPECT_EQ(counters.cells_stored, 63u);
  EXPECT_GT(counters.traceback_steps, 0u);
}

// Parameterized sweep over affine penalty combinations: the full-matrix
// alignment rescoring must match the score pass for every combination.
class AffinePenaltySweep
    : public ::testing::TestWithParam<std::pair<Score, Score>> {};

TEST_P(AffinePenaltySweep, AlignmentMatchesScorePass) {
  const auto [open, extend] = GetParam();
  const SubstitutionMatrix m = scoring::dna(4, -3);
  const ScoringScheme scheme(m, open, extend);
  Xoshiro256 rng(static_cast<std::uint64_t>(-open) * 100 +
                 static_cast<std::uint64_t>(-extend));
  for (int trial = 0; trial < 8; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    const Alignment aln = full_matrix_align_affine(a, b, scheme);
    EXPECT_EQ(aln.score,
              global_score_affine(a.residues(), b.residues(), scheme));
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, AffinePenaltySweep,
    ::testing::Values(std::pair<Score, Score>{0, -1},
                      std::pair<Score, Score>{-1, -1},
                      std::pair<Score, Score>{-5, -1},
                      std::pair<Score, Score>{-10, -1},
                      std::pair<Score, Score>{-10, -5},
                      std::pair<Score, Score>{-20, -2},
                      std::pair<Score, Score>{0, 0},
                      std::pair<Score, Score>{-3, 0}));

}  // namespace
}  // namespace flsa
