// Tests for the tile-DAG recorder and the virtual-time executor.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"
#include "simexec/model.hpp"
#include "simexec/simulate.hpp"
#include "simexec/virtual_time.hpp"

namespace flsa {
namespace {

TileGridRecord uniform_grid(std::size_t rows, std::size_t cols,
                            std::uint64_t cost) {
  TileGridRecord grid;
  grid.rows = rows;
  grid.cols = cols;
  grid.costs.assign(rows * cols, cost);
  return grid;
}

class Policies : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(Policies, OneProcessorMakespanIsTotalCost) {
  const TileGridRecord grid = uniform_grid(6, 7, 10);
  EXPECT_EQ(grid_makespan(grid, 1, GetParam()), 6u * 7u * 10u);
}

TEST_P(Policies, MakespanMonotoneInProcessors) {
  const TileGridRecord grid = uniform_grid(12, 12, 5);
  std::uint64_t previous = ~std::uint64_t{0};
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const std::uint64_t m = grid_makespan(grid, p, GetParam());
    EXPECT_LE(m, previous) << "P=" << p;
    previous = m;
  }
}

TEST_P(Policies, CriticalPathLowerBound) {
  // With unlimited processors the makespan is the critical path: the
  // (rows + cols - 1) diagonal chain.
  const TileGridRecord grid = uniform_grid(9, 4, 3);
  const std::uint64_t critical = (9 + 4 - 1) * 3;
  EXPECT_EQ(grid_makespan(grid, 1000, GetParam()), critical);
  EXPECT_GE(grid_makespan(grid, 4, GetParam()), critical);
}

TEST_P(Policies, SpeedupNeverExceedsP) {
  const TileGridRecord grid = uniform_grid(16, 16, 7);
  RunTrace trace;
  trace.grids.push_back(grid);
  for (unsigned p : {2u, 4u, 8u}) {
    const SpeedupPoint point = speedup_at(trace, p, GetParam());
    EXPECT_LE(point.speedup, static_cast<double>(p) + 1e-9);
    EXPECT_GT(point.speedup, 1.0);
    EXPECT_LE(point.efficiency, 1.0 + 1e-9);
  }
}

TEST_P(Policies, SkippedTilesContributeNothing) {
  TileGridRecord grid = uniform_grid(4, 4, 10);
  // Skip the bottom-right 2x2 (down-right closed).
  for (std::size_t ti = 2; ti < 4; ++ti) {
    for (std::size_t tj = 2; tj < 4; ++tj) {
      grid.costs[ti * 4 + tj] = TileGridRecord::kSkipped;
    }
  }
  EXPECT_EQ(grid.total_cost(), 120u);
  EXPECT_EQ(grid.tile_count(), 12u);
  EXPECT_EQ(grid_makespan(grid, 1, GetParam()), 120u);
}

INSTANTIATE_TEST_SUITE_P(Policies, Policies,
                         ::testing::Values(
                             SchedulerKind::kBarrierStaged,
                             SchedulerKind::kDependencyCounter),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          SchedulerKind::kBarrierStaged
                                      ? "barrier"
                                      : "dependency";
                         });

TEST(VirtualTime, DependencyDominatesBarrierOnRaggedCosts) {
  // Uneven tile costs leave barrier stages waiting for stragglers; the
  // dependency-counter policy overlaps across diagonals and can only be
  // faster or equal.
  Xoshiro256 rng(121);
  TileGridRecord grid;
  grid.rows = 10;
  grid.cols = 10;
  grid.costs.resize(100);
  for (auto& c : grid.costs) c = 1 + rng.bounded(50);
  for (unsigned p : {2u, 4u, 8u}) {
    EXPECT_LE(
        grid_makespan(grid, p, SchedulerKind::kDependencyCounter),
        grid_makespan(grid, p, SchedulerKind::kBarrierStaged))
        << "P=" << p;
  }
}

TEST(VirtualTime, BarrierMatchesPaperThreePhaseFormula) {
  // Uniform square grid, exact barrier makespan: sum over diagonals of
  // ceil(line_length / P) * T — the paper's three-phase accounting.
  const std::size_t n = 12;
  const std::uint64_t t = 4;
  const unsigned p = 5;
  const TileGridRecord grid = uniform_grid(n, n, t);
  std::uint64_t expected = 0;
  for (std::size_t d = 0; d + 1 < 2 * n; ++d) {
    const std::size_t len = d < n ? d + 1 : 2 * n - 1 - d;
    expected += (len + p - 1) / p * t;
  }
  EXPECT_EQ(grid_makespan(grid, p, SchedulerKind::kBarrierStaged), expected);
}

TEST(RecordingExecutor, CapturesGridShapeAndCosts) {
  RecordingExecutor recorder;
  recorder.run(
      2, 3, [](std::size_t ti, std::size_t tj) { return ti == 1 && tj == 2; },
      [](std::size_t ti, std::size_t tj, unsigned) {
        return static_cast<std::uint64_t>(ti * 10 + tj);
      },
      TilePhase::kFillCache);
  const RunTrace& trace = recorder.trace();
  ASSERT_EQ(trace.grids.size(), 1u);
  const TileGridRecord& grid = trace.grids[0];
  EXPECT_EQ(grid.rows, 2u);
  EXPECT_EQ(grid.cols, 3u);
  EXPECT_EQ(grid.costs[0 * 3 + 2], 2u);
  EXPECT_EQ(grid.costs[1 * 3 + 0], 10u);
  EXPECT_EQ(grid.costs[1 * 3 + 2], TileGridRecord::kSkipped);
  EXPECT_EQ(grid.phase, TilePhase::kFillCache);
}

TEST(RecordFastLsa, TraceCellsMatchCounters) {
  Xoshiro256 rng(122);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 200, model, rng);
  FastLsaOptions options;
  options.k = 4;
  options.base_case_cells = 256;
  const SimulatedRun run = record_fastlsa(pair.a, pair.b,
                                          pair.a.alphabet().size() == 20
                                              ? ScoringScheme::paper_default()
                                              : ScoringScheme::paper_default(),
                                          options, /*threads=*/8);
  // The alignment is still correct.
  EXPECT_EQ(run.alignment.score,
            full_matrix_score(pair.a, pair.b,
                              ScoringScheme::paper_default()));
  // Every scored/stored cell flowed through recorded tiles.
  EXPECT_EQ(run.trace.total_cells(), run.stats.counters.total_cells());
  EXPECT_GT(run.trace.grids.size(), 1u);
}

TEST(RecordFastLsa, SpeedupCurveShapesMatchThePaper) {
  Xoshiro256 rng(123);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 600, model, rng);
  FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 2048;
  const SimulatedRun run =
      record_fastlsa(pair.a, pair.b, ScoringScheme::paper_default(), options,
                     /*threads=*/8);
  const auto curve = speedup_curve(run.trace, {1, 2, 4, 8},
                                   SchedulerKind::kDependencyCounter);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_NEAR(curve[0].speedup, 1.0, 1e-9);
  // Monotone increasing speedup...
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].speedup, curve[i - 1].speedup);
  }
  // ...and "almost linear for 8 processors or less" (the paper's claim):
  // comfortably more than half-efficient at P = 8 on this size.
  EXPECT_GT(curve[3].efficiency, 0.5);
}

TEST(RecordFastLsa, EfficiencyGrowsWithSequenceLength) {
  // The paper: "the efficiency of Parallel FastLSA increases with the size
  // of the sequences". With a fixed k the tile count is size-independent,
  // so the effect comes from fixed per-tile costs amortizing over bigger
  // tiles — modeled by the per_tile_overhead parameter.
  constexpr std::uint64_t kOverhead = 2000;
  FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1024;
  double previous = 0.0;
  for (std::size_t len : {200u, 800u, 2000u}) {
    Xoshiro256 rng(len);
    MutationModel model;
    const SequencePair pair =
        homologous_pair(Alphabet::protein(), len, model, rng);
    const SimulatedRun run = record_fastlsa(
        pair.a, pair.b, ScoringScheme::paper_default(), options, 8);
    const SpeedupPoint point = speedup_at(
        run.trace, 8, SchedulerKind::kDependencyCounter, kOverhead);
    EXPECT_GT(point.efficiency, previous) << "len=" << len;
    previous = point.efficiency;
  }
}

TEST(RecordFastLsa, Theorem4BoundHoldsUnderUniformTiling) {
  // Eq. 36: WT(m,n,k,P) <= (mn/P)(1 + (P^2-P)/(RC))(k/(k-1))^2, premised
  // on every recursion level tiled R x C (min_tile_extent = 1).
  Xoshiro256 rng(124);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 700, model, rng);
  FastLsaOptions options;
  options.k = 4;
  options.base_case_cells = 256;
  const std::size_t tiles_per_block = 2;
  const SimulatedRun run = record_fastlsa(
      pair.a, pair.b, ScoringScheme::paper_default(), options, 8,
      tiles_per_block, /*base_case_tiles=*/8, /*min_tile_extent=*/1);
  const std::size_t top = options.k * tiles_per_block;
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double measured = static_cast<double>(
        trace_makespan(run.trace, p, SchedulerKind::kBarrierStaged));
    const double bound = model::total_time_bound(
        pair.a.size(), pair.b.size(), options.k, p, top, top);
    EXPECT_LE(measured, bound) << "P=" << p;
  }
}

TEST(VirtualTime, PerTileOverheadSlowsEverything) {
  const TileGridRecord grid = uniform_grid(8, 8, 100);
  for (SchedulerKind policy : {SchedulerKind::kBarrierStaged,
                               SchedulerKind::kDependencyCounter}) {
    const std::uint64_t plain = grid_makespan(grid, 4, policy, 0);
    const std::uint64_t loaded = grid_makespan(grid, 4, policy, 50);
    EXPECT_GT(loaded, plain);
    // One processor: overhead adds exactly tiles * overhead.
    EXPECT_EQ(grid_makespan(grid, 1, policy, 50),
              grid_makespan(grid, 1, policy, 0) + 64 * 50);
  }
}

TEST(VirtualTime, OverheadLowersSpeedupAgainstSequentialBaseline) {
  RunTrace trace;
  trace.grids.push_back(uniform_grid(8, 8, 100));
  const SpeedupPoint plain =
      speedup_at(trace, 4, SchedulerKind::kDependencyCounter, 0);
  const SpeedupPoint loaded =
      speedup_at(trace, 4, SchedulerKind::kDependencyCounter, 50);
  EXPECT_LT(loaded.speedup, plain.speedup);
  // Even P = 1 dips below 1.0: the sequential algorithm pays no dispatch.
  const SpeedupPoint p1 =
      speedup_at(trace, 1, SchedulerKind::kDependencyCounter, 50);
  EXPECT_LT(p1.speedup, 1.0);
}

}  // namespace
}  // namespace flsa
