// Tests for the packed sequence store: writer/open round-trips over
// every packing width, chunked appends across byte boundaries, the
// corruption matrix (each defect class must surface as its typed
// StoreError, never UB), and byte-level header fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "scoring/builtin.hpp"
#include "search/chain.hpp"
#include "sequence/generate.hpp"
#include "sequence/sequence_view.hpp"
#include "store/packed_store.hpp"
#include "support/fnv.hpp"
#include "support/prng.hpp"

namespace flsa {
namespace store {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "flsa_store_" + name + ".flsa";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// The header checksum (u32 at offset 60, FNV-1a of bytes [0, 60)) guards
// every header field; corruption tests that target a specific deeper
// check must re-seal it to get past the checksum gate.
void reseal_header(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 64u);
  const std::uint32_t sum = static_cast<std::uint32_t>(fnv1a64(bytes.data(), 60));
  for (int i = 0; i < 4; ++i) {
    bytes[60 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

std::string make_store(const std::string& name, const Alphabet& alphabet,
                       const std::vector<std::pair<std::string, std::string>>&
                           records) {
  const std::string path = temp_path(name);
  StoreWriter writer(path, alphabet);
  for (const auto& [letters, record_name] : records) {
    writer.append_letters(letters);
    writer.finish_record(record_name);
  }
  writer.finalize();
  return path;
}

StoreError::Kind open_kind(const std::string& path) {
  try {
    PackedStore::open(path);
  } catch (const StoreError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "open unexpectedly succeeded: " << path;
  return StoreError::Kind::kIo;
}

std::string random_letters(const Alphabet& alphabet, std::size_t length,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_sequence(alphabet, length, rng).to_string();
}

// ---------------------------------------------------------------------------
// Round trips

TEST(StoreRoundTrip, DnaPacksTwoBitsAndDecodesIdentically) {
  const std::string letters = random_letters(Alphabet::dna(), 1003, 11);
  const std::string path = make_store("dna", Alphabet::dna(), {{letters, "chr"}});
  const auto stored = PackedStore::open(path);
  EXPECT_EQ(stored->bits(), 2);
  EXPECT_EQ(stored->total_residues(), letters.size());
  ASSERT_EQ(stored->record_count(), 1u);
  EXPECT_EQ(stored->record(0).name, "chr");
  const SequenceView view = stored->view(0);
  EXPECT_EQ(view.packing(), Packing::kTwoBit);
  EXPECT_EQ(view.size(), letters.size());
  EXPECT_EQ(view.to_string(), letters);
}

TEST(StoreRoundTrip, DnaNPacksNibblesAndDecodesIdentically) {
  const std::string letters = random_letters(Alphabet::dna_n(), 517, 12);
  const std::string path =
      make_store("dna_n", Alphabet::dna_n(), {{letters, "ambiguous"}});
  const auto stored = PackedStore::open(path);
  EXPECT_EQ(stored->bits(), 4);
  EXPECT_EQ(&stored->alphabet(), &Alphabet::dna_n());
  EXPECT_EQ(stored->view(0).to_string(), letters);
}

TEST(StoreRoundTrip, ProteinPacksBytesAndDecodesIdentically) {
  const std::string letters = random_letters(Alphabet::protein(), 301, 13);
  const std::string path =
      make_store("protein", Alphabet::protein(), {{letters, "orf1"}});
  const auto stored = PackedStore::open(path);
  EXPECT_EQ(stored->bits(), 8);
  const SequenceView view = stored->view(0);
  EXPECT_TRUE(view.is_contiguous());
  EXPECT_EQ(view.to_string(), letters);
}

TEST(StoreRoundTrip, MultiRecordFilesKeepRecordsByteAlignedAndNamed) {
  // Record lengths chosen so every record ends mid-byte at 2 bits per
  // residue; the writer must pad so record i+1 starts byte-aligned.
  const std::vector<std::pair<std::string, std::string>> records = {
      {random_letters(Alphabet::dna(), 5, 21), "a"},
      {random_letters(Alphabet::dna(), 7, 22), "b"},
      {random_letters(Alphabet::dna(), 9, 23), ""},
      {random_letters(Alphabet::dna(), 250, 24), "final-record"},
  };
  const std::string path = make_store("multi", Alphabet::dna(), records);
  const auto stored = PackedStore::open(path);
  ASSERT_EQ(stored->record_count(), records.size());
  std::uint64_t expected_total = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(stored->record(i).name, records[i].second) << i;
    EXPECT_EQ(stored->view(i).to_string(), records[i].first) << i;
    expected_total += records[i].first.size();
  }
  EXPECT_EQ(stored->total_residues(), expected_total);
}

TEST(StoreRoundTrip, ChunkedAppendsSpanningByteBoundariesMatchOneShot) {
  const std::string letters = random_letters(Alphabet::dna(), 641, 31);
  const std::string path = temp_path("chunked");
  StoreWriter writer(path, Alphabet::dna());
  // Odd chunk sizes so chunk edges land at every bit offset in a byte.
  std::size_t offset = 0;
  const std::size_t sizes[] = {1, 3, 7, 13, 64, 251};
  std::size_t which = 0;
  while (offset < letters.size()) {
    const std::size_t len =
        std::min(sizes[which++ % 6], letters.size() - offset);
    writer.append_letters(std::string_view(letters).substr(offset, len));
    offset += len;
  }
  EXPECT_EQ(writer.current_record_residues(), letters.size());
  writer.finish_record("chunked");
  writer.finalize();
  EXPECT_EQ(PackedStore::open(path)->view(0).to_string(), letters);
}

TEST(StoreRoundTrip, EmptyStoreAndEmptyRecordOpenCleanly) {
  const std::string path = make_store("empty", Alphabet::dna(), {});
  const auto stored = PackedStore::open(path);
  EXPECT_EQ(stored->record_count(), 0u);
  EXPECT_EQ(stored->total_residues(), 0u);

  const std::string path2 =
      make_store("empty_record", Alphabet::dna(), {{"", "nothing"}});
  const auto stored2 = PackedStore::open(path2);
  ASSERT_EQ(stored2->record_count(), 1u);
  EXPECT_EQ(stored2->view(0).size(), 0u);
  EXPECT_TRUE(stored2->view(0).to_string().empty());
}

TEST(StoreWriter, ForeignCharacterThrowsWithoutCorruptingTheRecord) {
  const std::string path = temp_path("foreign");
  StoreWriter writer(path, Alphabet::dna());
  writer.append_letters("ACGT");
  EXPECT_THROW(writer.append_letters("ACXT"), std::invalid_argument);
  // append_letters validates before buffering: the rejected chunk must
  // leave no partial residues behind.
  EXPECT_EQ(writer.current_record_residues(), 4u);
  writer.append_letters("TTTT");
  writer.finish_record("kept");
  writer.finalize();
  EXPECT_EQ(PackedStore::open(path)->view(0).to_string(), "ACGTTTTT");
}

TEST(StoreWriter, DestructionWithoutFinalizeRemovesTheFile) {
  const std::string path = temp_path("abandoned");
  {
    StoreWriter writer(path, Alphabet::dna());
    writer.append_letters("ACGTACGT");
  }
  std::ifstream in(path, std::ios::binary);
  EXPECT_FALSE(in.good()) << "abandoned store file left behind";
}

TEST(StoreRoundTrip, ViewKeepsTheMappingAliveAfterStoreHandleIsDropped) {
  const std::string letters = random_letters(Alphabet::dna(), 4096, 41);
  const std::string path = make_store("alive", Alphabet::dna(), {{letters, "x"}});
  SequenceView view;
  {
    const auto stored = PackedStore::open(path);
    view = stored->view(0);
  }
  // The shared owner inside the view must keep the mmap valid.
  EXPECT_EQ(view.to_string(), letters);
}

TEST(StoreParity, PackedViewIndexesAndSearchesLikeAByteSequence) {
  Xoshiro256 rng(71);
  const Sequence subject = random_sequence(Alphabet::dna(), 2000, rng);
  const std::string path =
      make_store("parity", Alphabet::dna(), {{subject.to_string(), "s"}});
  const auto stored = PackedStore::open(path);

  // One index over the in-memory byte sequence, one over the 2-bit
  // mmap'd record: the whole pipeline must not notice the packing.
  const search::ReferenceIndex byte_index(subject, 12);
  const search::ReferenceIndex packed_index(stored->view(0), 12);
  const Sequence probe(Alphabet::dna(),
                       subject.to_string().substr(700, 180), "probe");
  static const SubstitutionMatrix matrix = scoring::dna(5, -4);
  const ScoringScheme scheme(matrix, -6);
  const auto byte_hits = search::chained_search(probe, byte_index, scheme);
  const auto packed_hits = search::chained_search(probe, packed_index, scheme);
  ASSERT_FALSE(byte_hits.empty());
  ASSERT_EQ(byte_hits.size(), packed_hits.size());
  for (std::size_t i = 0; i < byte_hits.size(); ++i) {
    EXPECT_EQ(byte_hits[i].alignment.score, packed_hits[i].alignment.score)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Corruption matrix: one test per StoreError kind, each produced by the
// minimal byte-level defect that triggers it.

class StoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = make_store("corrupt", Alphabet::dna(),
                       {{random_letters(Alphabet::dna(), 301, 51), "a"},
                        {random_letters(Alphabet::dna(), 77, 52), "b"}});
    bytes_ = read_file(path_);
    ASSERT_GE(bytes_.size(), 4096u);
  }

  void expect_kind(StoreError::Kind kind) {
    write_file(path_, bytes_);
    EXPECT_EQ(open_kind(path_), kind);
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(StoreCorruption, BadMagic) {
  bytes_[0] ^= 0xFF;
  expect_kind(StoreError::Kind::kBadMagic);
}

TEST_F(StoreCorruption, UnsupportedVersion) {
  bytes_[8] = 9;  // version precedes the checksum gate: no reseal needed
  expect_kind(StoreError::Kind::kBadVersion);
}

TEST_F(StoreCorruption, HeaderChecksumMismatch) {
  bytes_[16] ^= 0x01;  // total-residues field, checksum left stale
  expect_kind(StoreError::Kind::kBadHeader);
}

TEST_F(StoreCorruption, BadPackingBits) {
  bytes_[12] = 3;
  reseal_header(bytes_);
  expect_kind(StoreError::Kind::kBadHeader);
}

TEST_F(StoreCorruption, UnknownAlphabetId) {
  bytes_[13] = 200;
  reseal_header(bytes_);
  expect_kind(StoreError::Kind::kBadHeader);
}

TEST_F(StoreCorruption, InconsistentSectionOffsets) {
  bytes_[24] ^= 0x01;  // payload offset no longer the fixed page
  reseal_header(bytes_);
  expect_kind(StoreError::Kind::kBadHeader);
}

TEST_F(StoreCorruption, FileShorterThanHeader) {
  bytes_.resize(32);
  expect_kind(StoreError::Kind::kTruncated);
}

TEST_F(StoreCorruption, FileShorterThanHeaderClaims) {
  bytes_.resize(bytes_.size() - 8);  // cut into the record table
  expect_kind(StoreError::Kind::kTruncated);
}

TEST_F(StoreCorruption, RecordPayloadOutOfBounds) {
  // The record table is not checksummed (the header and payload are);
  // table offset is at header[40], record 1's payload begin at +24.
  std::uint64_t table_offset = 0;
  for (int i = 7; i >= 0; --i) {
    table_offset = (table_offset << 8) | bytes_[40 + static_cast<std::size_t>(i)];
  }
  const std::size_t entry = static_cast<std::size_t>(table_offset) + 24;
  bytes_[entry + 2] ^= 0x7F;  // record 1 byte_begin blown far past payload
  expect_kind(StoreError::Kind::kBadRecord);
}

TEST_F(StoreCorruption, RecordNameOverrunsTable) {
  std::uint64_t table_offset = 0;
  for (int i = 7; i >= 0; --i) {
    table_offset = (table_offset << 8) | bytes_[40 + static_cast<std::size_t>(i)];
  }
  // Record 0 name length (u32 at entry offset 20) inflated past the heap.
  bytes_[static_cast<std::size_t>(table_offset) + 20 + 2] = 0xFF;
  expect_kind(StoreError::Kind::kBadRecord);
}

TEST_F(StoreCorruption, RecordCountsDisagreeWithHeader) {
  std::uint64_t table_offset = 0;
  for (int i = 7; i >= 0; --i) {
    table_offset = (table_offset << 8) | bytes_[40 + static_cast<std::size_t>(i)];
  }
  bytes_[static_cast<std::size_t>(table_offset) + 8] ^= 0x01;  // record 0 count
  expect_kind(StoreError::Kind::kBadRecord);
}

TEST_F(StoreCorruption, PayloadHashMismatch) {
  bytes_[4096] ^= 0xFF;  // first payload byte
  expect_kind(StoreError::Kind::kBadChecksum);
}

TEST_F(StoreCorruption, MissingFileReportsIo) {
  EXPECT_EQ(open_kind(temp_path("does_not_exist")),
            StoreError::Kind::kIo);
}

// Every single-byte header flip and every truncation point must land in
// a typed StoreError or a clean open — never UB. Mirrors the protocol
// decoder's prefix-cut fuzz.
TEST_F(StoreCorruption, EveryHeaderByteFlipFailsTypedOrOpensClean) {
  for (std::size_t i = 0; i < 64; ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<std::uint8_t> mutated = bytes_;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_file(path_, mutated);
      try {
        const auto stored = PackedStore::open(path_);
        // Flips in header padding [14..16) record-count high byte etc.
        // may genuinely not matter only if the checksum still holds,
        // which a flip never allows — except flips inside unused
        // padding past offset 64 (not exercised here). Opening clean is
        // acceptable only if decoding round-trips.
        EXPECT_EQ(stored->view(0).size(), stored->record(0).count);
      } catch (const StoreError&) {
        // typed failure: expected for nearly every flip
      }
    }
  }
}

TEST_F(StoreCorruption, EveryTruncationPointFailsTypedOrOpensClean) {
  const std::size_t total = bytes_.size();
  for (std::size_t cut = 0; cut < total; cut += 97) {
    std::vector<std::uint8_t> mutated = bytes_;
    mutated.resize(cut);
    write_file(path_, mutated);
    try {
      PackedStore::open(path_);
      ADD_FAILURE() << "truncated open succeeded at " << cut;
    } catch (const StoreError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// packed_bytes arithmetic

TEST(PackedBytes, RoundsUpPerPackingWidth) {
  EXPECT_EQ(packed_bytes(0, 2), 0u);
  EXPECT_EQ(packed_bytes(1, 2), 1u);
  EXPECT_EQ(packed_bytes(4, 2), 1u);
  EXPECT_EQ(packed_bytes(5, 2), 2u);
  EXPECT_EQ(packed_bytes(2, 4), 1u);
  EXPECT_EQ(packed_bytes(3, 4), 2u);
  EXPECT_EQ(packed_bytes(7, 8), 7u);
}

TEST(PackedBytes, HugeResidueCountsDoNotWrap) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(packed_bytes(max, 2), max / 4 + 1);
  EXPECT_EQ(packed_bytes(max, 8), max);
}

TEST(PackingBits, MatchesAlphabetWidth) {
  EXPECT_EQ(packing_bits(Alphabet::dna()), 2);
  EXPECT_EQ(packing_bits(Alphabet::dna_n()), 4);
  EXPECT_EQ(packing_bits(Alphabet::protein()), 8);
}

}  // namespace
}  // namespace store
}  // namespace flsa
