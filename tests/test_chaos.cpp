// Chaos soak for the alignment service: a flood of retrying clients
// against a server running a randomized (but seeded, hence reproducible)
// fault plan. The contract under test is absolute: every request
// terminates — promptly — in exactly one of
//   * an ALIGN_OK whose score is bit-identical to direct align(), or
//   * a typed ErrorResponse, or
//   * a typed TransportError / ProtocolError on the client,
// never a hang, never a silent drop, never a plausible-but-wrong score.
// These tests run under TSan in CI (the `service-chaos` job): the
// injector's kill/truncate/delay paths racing the worker pool's response
// writes are the subject under test as much as the outcomes are.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/aligner.hpp"
#include "search/chain.hpp"
#include "search/reference_index.hpp"
#include "obs/metrics.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "sequence/generate.hpp"
#include "service/client.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"

namespace flsa {
namespace service {
namespace {

// ---- Fault-plan grammar ----------------------------------------------

TEST(FaultPlan, ParsesTheFullGrammar) {
  const FaultPlan plan = parse_fault_plan(
      "seed=42,reject=0.2,drop=0.05,delay=0.1:25,truncate=0.05,"
      "corrupt=0.125");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.reject, 0.2);
  EXPECT_DOUBLE_EQ(plan.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.delay, 0.1);
  EXPECT_EQ(plan.delay_ms, 25u);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.05);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.125);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, EmptyAndOffAreInactive) {
  EXPECT_FALSE(parse_fault_plan("").enabled());
  EXPECT_FALSE(parse_fault_plan("off").enabled());
  EXPECT_FALSE(parse_fault_plan("seed=9").enabled());  // seed alone: no faults
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const FaultPlan plan =
      parse_fault_plan("seed=7,reject=0.25,delay=0.5:100,corrupt=0.75");
  const FaultPlan again = parse_fault_plan(to_string(plan));
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.reject, plan.reject);
  EXPECT_DOUBLE_EQ(again.delay, plan.delay);
  EXPECT_EQ(again.delay_ms, plan.delay_ms);
  EXPECT_DOUBLE_EQ(again.corrupt, plan.corrupt);
  EXPECT_EQ(to_string(parse_fault_plan("off")), "off");
}

TEST(FaultPlan, RejectsBadGrammar) {
  EXPECT_THROW(parse_fault_plan("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("reject"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("reject=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("reject=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("reject=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("delay=0.5:999999"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("seed=notanumber"), std::invalid_argument);
}

TEST(FaultInjector, TruncationIsAlwaysAStrictPrefix) {
  FaultInjector injector(parse_fault_plan("seed=11,truncate=1"));
  for (std::size_t size : {std::size_t(1), std::size_t(2), std::size_t(5),
                           std::size_t(64), std::size_t(4096)}) {
    for (int i = 0; i < 32; ++i) {
      const std::size_t cut = injector.truncate_point(size);
      EXPECT_LT(cut, size);  // strict: the peer always sees EOF mid-frame
    }
  }
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultPlan plan = parse_fault_plan("seed=99,drop=0.5,reject=0.5");
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.inject_reject(), b.inject_reject());
    EXPECT_EQ(a.inject_read() == ReadFault::kDrop,
              b.inject_read() == ReadFault::kDrop);
  }
}

// ---- The soak itself --------------------------------------------------

struct SoakTally {
  std::atomic<std::uint64_t> correct{0};     ///< bit-identical scores
  std::atomic<std::uint64_t> rejected{0};    ///< typed ErrorResponse
  std::atomic<std::uint64_t> transport{0};   ///< typed TransportError
  std::atomic<std::uint64_t> protocol{0};    ///< typed ProtocolError
  std::atomic<std::uint64_t> wrong{0};       ///< the unforgivable bucket
};

/// One client thread: `requests` closed-loop calls through the retry
/// layer, every outcome tallied. Anything that is not a correct score or
/// a typed error lands in `failures[index]` and fails the test.
void soak_client(const AlignmentServer& server, unsigned index,
                 int requests, const std::string& a, const std::string& b,
                 Score expected, SoakTally* tally, std::string* failure) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(20);
  policy.retry_budget = std::chrono::milliseconds(5000);
  policy.seed = 0xC0FFEE + index;

  Client client;
  try {
    client.connect("127.0.0.1", server.port());
  } catch (const TransportError&) {
    // The server may already be draining (stop-under-fire soak); every
    // request this thread would have made terminates typed.
    tally->transport.fetch_add(static_cast<std::uint64_t>(requests));
    return;
  }
  for (int i = 0; i < requests; ++i) {
    AlignRequest request;
    request.matrix = WireMatrix::kMdm78;
    request.gap_extend = -10;
    request.a = a;
    request.b = b;
    try {
      const Response response =
          client.call_with_retry(std::move(request), policy);
      if (const auto* ok = std::get_if<AlignResponse>(&response)) {
        if (ok->score == expected) {
          tally->correct.fetch_add(1);
        } else {
          tally->wrong.fetch_add(1);
          *failure = "wrong score " + std::to_string(ok->score) +
                     " (expected " + std::to_string(expected) + ")";
          return;
        }
      } else if (std::holds_alternative<ErrorResponse>(response)) {
        tally->rejected.fetch_add(1);
      } else {
        *failure = "unexpected STATS response";
        return;
      }
    } catch (const ProtocolError&) {
      // A corrupt fault consumed this request's answer; the stream is
      // still frame-aligned but the connection's trust is spent.
      tally->protocol.fetch_add(1);
      client.close();
    } catch (const TransportError&) {
      tally->transport.fetch_add(1);  // retries exhausted, typed
    } catch (const std::exception& e) {
      *failure = std::string("untyped failure: ") + e.what();
      return;
    }
  }
}

TEST(Chaos, EveryRequestTerminatesCorrectOrTyped) {
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.fault_plan = parse_fault_plan(
      "seed=42,reject=0.15,drop=0.05,delay=0.1:5,truncate=0.05,"
      "corrupt=0.05");
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(4242);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 112, model, rng);
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  const Score expected =
      align(Sequence(Alphabet::protein(), a), Sequence(Alphabet::protein(), b),
            ScoringScheme(scoring::mdm78(), -10), options)
          .score;

  constexpr unsigned kClients = 4;
  constexpr int kRequestsEach = 24;
  SoakTally tally;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      soak_client(server, t, kRequestsEach, a, b, expected, &tally,
                  &failures[t]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.stop();

  for (unsigned t = 0; t < kClients; ++t) {
    EXPECT_EQ(failures[t], "") << "client " << t;
  }
  const std::uint64_t total = tally.correct + tally.rejected +
                              tally.transport + tally.protocol + tally.wrong;
  EXPECT_EQ(total, std::uint64_t(kClients) * kRequestsEach)
      << "some request terminated in no bucket at all";
  EXPECT_EQ(tally.wrong.load(), 0u) << "a damaged frame decoded to a score";
  // With 8 retry attempts against these fault rates, the overwhelming
  // majority of requests must still come back correct.
  EXPECT_GE(tally.correct.load(), std::uint64_t(kClients) * kRequestsEach / 2)
      << "correct=" << tally.correct << " rejected=" << tally.rejected
      << " transport=" << tally.transport << " protocol=" << tally.protocol;
}

TEST(Chaos, RetryRecoversEveryInjectedOverload) {
  // Admission rejections only — the one fault class retry is *guaranteed*
  // to beat, because the request was provably never executed. With a 25%
  // rejection rate and 12 attempts, the chance any of the 48 calls
  // exhausts its attempts is ~48 * 0.25^12 ≈ 3e-6.
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=7,reject=0.25");
  AlignmentServer server(config);
  server.start();

  const std::uint64_t recovered_before =
      obs::metrics().counter("client.retry.recovered").value();

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(10);
  policy.seed = 0xBACC0FF;

  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr int kCalls = 48;
  int succeeded = 0;
  for (int i = 0; i < kCalls; ++i) {
    AlignRequest request;
    request.matrix = WireMatrix::kMdm78;
    request.gap_extend = -10;
    request.a = "TLDKLLKD";
    request.b = "TDVLKAD";
    const Response response =
        client.call_with_retry(std::move(request), policy);
    const auto* ok = std::get_if<AlignResponse>(&response);
    if (ok != nullptr && ok->score == 82) ++succeeded;
  }
  server.stop();

  EXPECT_EQ(succeeded, kCalls)
      << "retry failed to recover an idempotent-safe OVERLOADED rejection";
  // The injector fired on roughly a quarter of all attempts, so at least
  // one call must have needed (and recorded) a recovery.
  EXPECT_GT(obs::metrics().counter("client.retry.recovered").value(),
            recovered_before);
}

TEST(Chaos, SearchUnderFireIsBitIdenticalOrTyped) {
  // The SEARCH verb under the full fault plan: every search terminates in
  // a SearchResponse whose hits are bit-identical to the in-process
  // chained search, a typed ErrorResponse, or a typed client-side
  // transport/protocol error. Never a hang, never a garbled hit list.
  ServiceConfig config;
  config.workers = 2;
  config.fault_plan = parse_fault_plan(
      "seed=77,reject=0.1,drop=0.05,delay=0.1:5,truncate=0.05,"
      "corrupt=0.05");
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(7777);
  const Sequence gene = random_sequence(Alphabet::dna(), 140, rng);
  MutationModel model;
  model.substitution_rate = 0.04;
  const std::string reference_text =
      random_sequence(Alphabet::dna(), 1200, rng).to_string() +
      mutate(gene, model, rng).to_string() +
      random_sequence(Alphabet::dna(), 900, rng).to_string();

  // The in-process truth under the server's DNA defaults (k = 12).
  const search::ReferenceIndex index(
      Sequence(Alphabet::dna(), reference_text), 12);
  const auto expected = search::chained_search(
      gene, index, ScoringScheme(scoring::dna(), kDefaultGapExtend), {});
  ASSERT_FALSE(expected.empty());

  // Register the reference through the faulty pipe. REF_PUT has no retry
  // overload (it is not idempotent); the test retries by hand and uses
  // whichever registration answered last.
  Client client;
  client.connect("127.0.0.1", server.port());
  std::uint64_t ref_id = 0;
  for (int attempt = 0; attempt < 32 && ref_id == 0; ++attempt) {
    try {
      if (!client.connected()) client.connect("127.0.0.1", server.port());
      RefPutRequest put;
      put.matrix = WireMatrix::kDna;
      put.sequence = reference_text;
      const Response response = client.call(std::move(put));
      if (const auto* ok = std::get_if<RefPutResponse>(&response)) {
        ref_id = ok->ref_id;
      }
    } catch (const TransportError&) {
      client.close();
    } catch (const ProtocolError&) {
      client.close();
    }
  }
  ASSERT_NE(ref_id, 0u) << "REF_PUT never survived the fault plan";

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(20);
  policy.seed = 0x5EA4C4;

  constexpr int kCalls = 24;
  int correct = 0, rejected = 0, transport = 0, protocol = 0;
  for (int i = 0; i < kCalls; ++i) {
    SearchRequest request;
    request.ref_id = ref_id;
    request.matrix = WireMatrix::kDna;
    request.query = gene.to_string();
    try {
      const Response response =
          client.call_with_retry(std::move(request), policy);
      if (const auto* ok = std::get_if<SearchResponse>(&response)) {
        ASSERT_EQ(ok->hits.size(), expected.size()) << "call " << i;
        for (std::size_t h = 0; h < expected.size(); ++h) {
          const Alignment& want = expected[h].alignment;
          ASSERT_EQ(ok->hits[h].score, want.score) << "call " << i;
          ASSERT_EQ(ok->hits[h].s_begin, want.b_begin) << "call " << i;
          ASSERT_EQ(ok->hits[h].s_end, want.b_end) << "call " << i;
          ASSERT_EQ(ok->hits[h].cigar, want.cigar()) << "call " << i;
        }
        ++correct;
      } else if (std::holds_alternative<ErrorResponse>(response)) {
        ++rejected;
      } else {
        FAIL() << "unexpected response variant on call " << i;
      }
    } catch (const ProtocolError&) {
      ++protocol;
      client.close();
    } catch (const TransportError&) {
      ++transport;
    }
  }
  server.stop();

  EXPECT_EQ(correct + rejected + transport + protocol, kCalls);
  // With 8 retry attempts most searches must still come back correct.
  EXPECT_GE(correct, kCalls / 2)
      << "correct=" << correct << " rejected=" << rejected
      << " transport=" << transport << " protocol=" << protocol;
}

TEST(Chaos, RefPutRetriesNeverDoubleRegister) {
  // Drop faults kill connections *after* the server may already have
  // executed the REF_PUT — the classic at-least-once hazard. With the
  // content token filled in by call_with_retry, every resend of the
  // same sequence must settle on the original handle: one id per
  // distinct sequence, no matter how many attempts or what display
  // name each attempt carried.
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=31,drop=0.2,reject=0.1");
  AlignmentServer server(config);
  server.start();

  const std::uint64_t dedup_before =
      obs::metrics().counter("search.ref_dedup_hits").value();

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(10);
  policy.seed = 0xC0DE;

  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(920);
  constexpr int kSequences = 6;
  constexpr int kRounds = 4;
  std::vector<std::string> sequences;
  for (int s = 0; s < kSequences; ++s) {
    sequences.push_back(
        random_sequence(Alphabet::dna(), 300, rng).to_string());
  }
  std::vector<std::uint64_t> ids(kSequences, 0);
  int registered = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int s = 0; s < kSequences; ++s) {
      RefPutRequest put;
      put.matrix = WireMatrix::kDna;
      put.name = "try-" + std::to_string(round);  // token ignores the name
      put.sequence = sequences[static_cast<std::size_t>(s)];
      const Response response = client.call_with_retry(std::move(put), policy);
      const auto* ok = std::get_if<RefPutResponse>(&response);
      ASSERT_NE(ok, nullptr) << "round " << round << " sequence " << s;
      ++registered;
      std::uint64_t& id = ids[static_cast<std::size_t>(s)];
      if (id == 0) {
        id = ok->ref_id;
      } else {
        EXPECT_EQ(ok->ref_id, id)
            << "retried REF_PUT registered a duplicate (round " << round
            << ", sequence " << s << ")";
      }
    }
  }
  server.stop();
  EXPECT_EQ(registered, kSequences * kRounds);
  // Rounds past the first are replays by construction, so the dedup
  // path must have fired at least that many times.
  EXPECT_GE(obs::metrics().counter("search.ref_dedup_hits").value(),
            dedup_before + kSequences * (kRounds - 1));
}

TEST(Chaos, UploadUnderFireResumesToTheSameHandle) {
  // The streaming path under drop/truncate faults: upload_sequence
  // reconnects and resumes from the server's high-water mark, so the
  // sealed sequence must be byte-identical to the input — proven by
  // aligning it against the original via ALIGN_REF (an all-match
  // self-alignment scores exactly 5 per residue).
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=47,drop=0.05,truncate=0.03");
  AlignmentServer server(config);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(921);
  const std::string letters =
      random_sequence(Alphabet::dna(), 20000, rng).to_string();

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.chunk_residues = 512;  // many chunks -> many fault opportunities
  options.max_resumes = 64;
  const Response uploaded = client.upload_sequence(letters, options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr) << "upload did not survive the fault plan";
  EXPECT_EQ(ok->residues, letters.size());

  AlignRefRequest request;
  request.ref_a = ok->ref_id;
  request.matrix = WireMatrix::kDna;
  request.b = letters;
  request.gap_open = 0;  // banded self-alignment: fast, diagonal optimum
  request.gap_extend = -4;
  request.band = 16;
  request.score_only = true;
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(10);
  policy.seed = 0xFA57;
  const Response aligned = client.call_with_retry(request, policy);
  const auto* part = std::get_if<AlignPartResponse>(&aligned);
  ASSERT_NE(part, nullptr) << "ALIGN_REF did not survive the fault plan";
  EXPECT_EQ(part->score,
            static_cast<std::int64_t>(letters.size()) * 5)
      << "stored bytes differ from the uploaded letters";
  server.stop();
}

TEST(Chaos, DrainUnderFireStaysTyped) {
  // Stop the server while retrying clients are mid-flight: every
  // in-flight and every subsequent request still terminates typed
  // (SHUTTING_DOWN, a transport error, or a late correct answer).
  ServiceConfig config;
  config.workers = 2;
  config.fault_plan = parse_fault_plan("seed=13,reject=0.2,delay=0.2:5");
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(1313);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 96, model, rng);
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  const Score expected =
      align(Sequence(Alphabet::protein(), a), Sequence(Alphabet::protein(), b),
            ScoringScheme(scoring::mdm78(), -10), options)
          .score;

  constexpr unsigned kClients = 3;
  constexpr int kRequestsEach = 16;
  SoakTally tally;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      soak_client(server, t, kRequestsEach, a, b, expected, &tally,
                  &failures[t]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();  // mid-flood
  for (std::thread& thread : threads) thread.join();

  for (unsigned t = 0; t < kClients; ++t) {
    EXPECT_EQ(failures[t], "") << "client " << t;
  }
  EXPECT_EQ(tally.wrong.load(), 0u);
  EXPECT_EQ(tally.correct + tally.rejected + tally.transport +
                tally.protocol,
            std::uint64_t(kClients) * kRequestsEach);
}

}  // namespace
}  // namespace service
}  // namespace flsa
