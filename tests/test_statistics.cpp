// Tests for the Karlin-Altschul statistics module.
#include <gtest/gtest.h>

#include <cmath>

#include "scoring/builtin.hpp"
#include "scoring/statistics.hpp"

namespace flsa {
namespace {

TEST(Statistics, UniformFrequenciesSumToOne) {
  const auto freqs = scoring::uniform_frequencies(20);
  double total = 0;
  for (double p : freqs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(scoring::uniform_frequencies(0), std::invalid_argument);
}

TEST(Statistics, ExpectedScoreOfDnaMatrix) {
  // +5 on the diagonal (p = 1/4), -4 off it (p = 3/4):
  // E = 5/4 - 3 = -1.75.
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const auto freqs = scoring::uniform_frequencies(4);
  EXPECT_NEAR(scoring::expected_pair_score(m, freqs), -1.75, 1e-12);
}

TEST(Statistics, LambdaSatisfiesTheRestrictionEquation) {
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const auto freqs = scoring::uniform_frequencies(4);
  const double lambda = scoring::karlin_lambda(m, freqs);
  EXPECT_GT(lambda, 0.0);
  // Plug back in: sum p_i p_j e^{lambda s_ij} must be 1.
  double sum = 0;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      sum += 0.0625 * std::exp(lambda * m.at(static_cast<Residue>(x),
                                             static_cast<Residue>(y)));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Statistics, KnownLambdaForUnitDna) {
  // match +1 / mismatch -1 uniform DNA: closed form
  // (1/4)e^l + (3/4)e^{-l} = 1  =>  e^l = 3  =>  lambda = ln 3.
  const SubstitutionMatrix m = scoring::dna(1, -1);
  const auto freqs = scoring::uniform_frequencies(4);
  EXPECT_NEAR(scoring::karlin_lambda(m, freqs), std::log(3.0), 1e-6);
}

TEST(Statistics, LambdaShrinksWithScaledScores) {
  // Doubling every score halves lambda (s -> 2s, lambda -> lambda/2).
  const SubstitutionMatrix m1 = scoring::dna(5, -4);
  const SubstitutionMatrix m2 = scoring::dna(10, -8);
  const auto freqs = scoring::uniform_frequencies(4);
  EXPECT_NEAR(scoring::karlin_lambda(m2, freqs),
              scoring::karlin_lambda(m1, freqs) / 2.0, 1e-6);
}

TEST(Statistics, Blosum62LambdaInKnownRange) {
  // Published ungapped BLOSUM62 lambda with true background frequencies is
  // ~0.318; with uniform frequencies it lands nearby.
  const auto freqs = scoring::uniform_frequencies(20);
  const double lambda = scoring::karlin_lambda(scoring::blosum62(), freqs);
  EXPECT_GT(lambda, 0.2);
  EXPECT_LT(lambda, 0.45);
}

TEST(Statistics, NonNegativeExpectationRejected) {
  // mdm78 is non-negative everywhere: E[s] >= 0, no lambda exists.
  const auto freqs = scoring::uniform_frequencies(20);
  EXPECT_THROW(scoring::karlin_lambda(scoring::mdm78(), freqs),
               std::invalid_argument);
}

TEST(Statistics, AllNegativeMatrixRejected) {
  const SubstitutionMatrix m = scoring::dna(-1, -2);
  const auto freqs = scoring::uniform_frequencies(4);
  EXPECT_THROW(scoring::karlin_lambda(m, freqs), std::invalid_argument);
}

TEST(Statistics, EValueAndBitScoreBehaviour) {
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const auto freqs = scoring::uniform_frequencies(4);
  const scoring::KarlinParams params = scoring::karlin_params(m, freqs);
  // Higher raw score -> higher bit score, exponentially lower E-value.
  EXPECT_GT(scoring::bit_score(100, params), scoring::bit_score(50, params));
  EXPECT_LT(scoring::e_value(100, 1000, 1000, params),
            scoring::e_value(50, 1000, 1000, params));
  // Bigger search space -> bigger E-value, linearly.
  EXPECT_NEAR(scoring::e_value(60, 2000, 1000, params),
              2 * scoring::e_value(60, 1000, 1000, params), 1e-9);
  EXPECT_GT(scoring::e_value(0, 100, 100, params), 1.0);
}

TEST(Statistics, FrequencyValidation) {
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const std::vector<double> wrong_arity{0.5, 0.5};
  EXPECT_THROW(scoring::karlin_lambda(m, wrong_arity),
               std::invalid_argument);
  const std::vector<double> not_normalized{0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(scoring::karlin_lambda(m, not_normalized),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
