// Tests for the wavefront schedulers: dependency ordering, skip handling,
// completeness, and equivalence between policies.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/tile_executor.hpp"
#include "parallel/wavefront.hpp"

namespace flsa {
namespace {

// Defeats optimization of the busy-wait loop in UnevenTileCostsStillComplete.
std::atomic<long> benchmark_sink{0};

struct CompletionLog {
  explicit CompletionLog(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), done_(rows * cols) {
    for (auto& d : done_) d.store(false);
  }

  // Marks a tile complete, first asserting its dependencies completed.
  void complete(std::size_t ti, std::size_t tj) {
    if (ti > 0) {
      EXPECT_TRUE(done_[(ti - 1) * cols_ + tj].load());
    }
    if (tj > 0) {
      EXPECT_TRUE(done_[ti * cols_ + tj - 1].load());
    }
    done_[ti * cols_ + tj].store(true);
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& d : done_) n += d.load();
    return n;
  }

  std::size_t rows_, cols_;
  std::vector<std::atomic<bool>> done_;
};

class WavefrontPolicies : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(WavefrontPolicies, RunsAllTilesRespectingDependencies) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(7, 5);
  exec.run(
      7, 5, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_LT(worker, 4u);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 35u);
}

TEST_P(WavefrontPolicies, SkipsDownRightClosedRegion) {
  ThreadPool pool(3);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(6, 6);
  auto skip = [](std::size_t ti, std::size_t tj) {
    return ti >= 4 && tj >= 3;
  };
  exec.run(
      6, 6, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 36u - 6u);
}

TEST_P(WavefrontPolicies, SingleRowAndColumnGrids) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  for (const auto& [r, c] : {std::pair<std::size_t, std::size_t>{1, 12},
                            {12, 1},
                            {1, 1}}) {
    std::atomic<std::size_t> count{0};
    exec.run(
        r, c, nullptr,
        [&](std::size_t, std::size_t, unsigned) {
          count.fetch_add(1);
          return std::uint64_t{1};
        },
        TilePhase::kBaseCase);
    EXPECT_EQ(count.load(), r * c);
  }
}

TEST_P(WavefrontPolicies, StaircaseSkipRegion) {
  // A non-rectangular (but still down-right-closed) staircase skip:
  // skip(ti, tj) <=> 2*ti + tj >= 9 on a 6x7 grid. The last row is
  // skipped entirely, so the dependency-counter scheduler's runnable
  // count must not include it.
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  auto skip = [](std::size_t ti, std::size_t tj) {
    return 2 * ti + tj >= 9;
  };
  std::size_t expected = 0;
  for (std::size_t ti = 0; ti < 6; ++ti) {
    for (std::size_t tj = 0; tj < 7; ++tj) {
      if (!skip(ti, tj)) ++expected;
    }
  }
  ASSERT_EQ(expected, 23u);
  CompletionLog log(6, 7);
  exec.run(
      6, 7, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), expected);
}

TEST_P(WavefrontPolicies, MoreWorkersThanTiles) {
  // 8 workers, 4 tiles: most workers never get a tile, and on the
  // dependency-counter policy they must still wake up and exit when the
  // last tile completes.
  ThreadPool pool(8);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(2, 2);
  exec.run(
      2, 2, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_LT(worker, 8u);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kBaseCase);
  EXPECT_EQ(log.count(), 4u);
}

TEST_P(WavefrontPolicies, MoreWorkersThanTilesWithSkips) {
  // Workers > runnable tiles where skips thin the grid further: only the
  // first column of a 3x4 grid runs (down-right-closed region).
  ThreadPool pool(8);
  WavefrontExecutor exec(pool, GetParam());
  auto skip = [](std::size_t, std::size_t tj) { return tj >= 1; };
  CompletionLog log(3, 4);
  exec.run(
      3, 4, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 3u);
}

TEST_P(WavefrontPolicies, UnevenTileCostsStillComplete) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(5, 9);
  exec.run(
      5, 9, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        // Busy-wait proportional to a pseudo-random cost to shake the
        // schedule.
        int sink = 0;
        const int loops = static_cast<int>((ti * 31 + tj * 17) % 97) * 50;
        for (int i = 0; i < loops; ++i) sink += i;
        benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 45u);
}

TEST_P(WavefrontPolicies, EmptyGridIsNoop) {
  ThreadPool pool(2);
  WavefrontExecutor exec(pool, GetParam());
  exec.run(
      0, 5, nullptr,
      [&](std::size_t, std::size_t, unsigned) -> std::uint64_t {
        ADD_FAILURE() << "no tiles expected";
        return 0;
      },
      TilePhase::kFillCache);
}

INSTANTIATE_TEST_SUITE_P(Policies, WavefrontPolicies,
                         ::testing::Values(
                             SchedulerKind::kBarrierStaged,
                             SchedulerKind::kDependencyCounter),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          SchedulerKind::kBarrierStaged
                                      ? "barrier"
                                      : "dependency";
                         });

TEST(Wavefront, SequentialExecutorRowMajorOrder) {
  SequentialExecutor exec;
  std::vector<std::pair<std::size_t, std::size_t>> order;
  exec.run(
      3, 3, [](std::size_t ti, std::size_t tj) { return ti == 2 && tj == 2; },
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.emplace_back(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(order.back(), (std::pair<std::size_t, std::size_t>{2, 1}));
}

#if !defined(FLSA_OBS_OFF)
TEST(Wavefront, BarrierSchedulerRecordsLineSpans) {
  // The barrier policy stamps one scheduler-lane span per non-empty
  // wavefront line; a 3x4 grid has 6 anti-diagonals.
  ThreadPool pool(2);
  WavefrontExecutor exec(pool, SchedulerKind::kBarrierStaged);
  obs::TraceRecorder trace;
  obs::set_active_trace(&trace);
  exec.run(
      3, 4, nullptr,
      [&](std::size_t, std::size_t, unsigned) { return std::uint64_t{1}; },
      TilePhase::kFillCache);
  obs::set_active_trace(nullptr);
  std::size_t lines = 0, tiles = 0;
  for (const obs::TraceSpan& span : trace.spans()) {
    if (std::string_view(span.name) == "wavefront-line") {
      EXPECT_EQ(span.tid, obs::kSchedulerLane);
      EXPECT_GE(span.tiles, 1);
      ++lines;
    } else if (std::string_view(span.name) == "tile") {
      ++tiles;
    }
  }
  EXPECT_EQ(lines, 6u);
  EXPECT_EQ(tiles, 12u);
}
#endif  // !defined(FLSA_OBS_OFF)

TEST(Wavefront, SchedulerNames) {
  EXPECT_STREQ(to_string(SchedulerKind::kBarrierStaged), "barrier-staged");
  EXPECT_STREQ(to_string(SchedulerKind::kDependencyCounter),
               "dependency-counter");
}

}  // namespace
}  // namespace flsa
