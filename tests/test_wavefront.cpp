// Tests for the wavefront schedulers: dependency ordering, skip handling,
// completeness, and equivalence between policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <string_view>
#include <vector>

#include "core/tile_executor.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/wavefront.hpp"

namespace flsa {
namespace {

// Defeats optimization of the busy-wait loop in UnevenTileCostsStillComplete.
std::atomic<long> benchmark_sink{0};

struct CompletionLog {
  explicit CompletionLog(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), done_(rows * cols) {
    for (auto& d : done_) d.store(false);
  }

  // Marks a tile complete, first asserting its dependencies completed.
  void complete(std::size_t ti, std::size_t tj) {
    if (ti > 0) {
      EXPECT_TRUE(done_[(ti - 1) * cols_ + tj].load());
    }
    if (tj > 0) {
      EXPECT_TRUE(done_[ti * cols_ + tj - 1].load());
    }
    done_[ti * cols_ + tj].store(true);
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& d : done_) n += d.load();
    return n;
  }

  std::size_t rows_, cols_;
  std::vector<std::atomic<bool>> done_;
};

class WavefrontPolicies : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(WavefrontPolicies, RunsAllTilesRespectingDependencies) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(7, 5);
  exec.run(
      7, 5, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_LT(worker, 4u);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 35u);
}

TEST_P(WavefrontPolicies, SkipsDownRightClosedRegion) {
  ThreadPool pool(3);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(6, 6);
  auto skip = [](std::size_t ti, std::size_t tj) {
    return ti >= 4 && tj >= 3;
  };
  exec.run(
      6, 6, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 36u - 6u);
}

TEST_P(WavefrontPolicies, SingleRowAndColumnGrids) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  for (const auto& [r, c] : {std::pair<std::size_t, std::size_t>{1, 12},
                            {12, 1},
                            {1, 1}}) {
    std::atomic<std::size_t> count{0};
    exec.run(
        r, c, nullptr,
        [&](std::size_t, std::size_t, unsigned) {
          count.fetch_add(1);
          return std::uint64_t{1};
        },
        TilePhase::kBaseCase);
    EXPECT_EQ(count.load(), r * c);
  }
}

TEST_P(WavefrontPolicies, StaircaseSkipRegion) {
  // A non-rectangular (but still down-right-closed) staircase skip:
  // skip(ti, tj) <=> 2*ti + tj >= 9 on a 6x7 grid. The last row is
  // skipped entirely, so the dependency-counter scheduler's runnable
  // count must not include it.
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  auto skip = [](std::size_t ti, std::size_t tj) {
    return 2 * ti + tj >= 9;
  };
  std::size_t expected = 0;
  for (std::size_t ti = 0; ti < 6; ++ti) {
    for (std::size_t tj = 0; tj < 7; ++tj) {
      if (!skip(ti, tj)) ++expected;
    }
  }
  ASSERT_EQ(expected, 23u);
  CompletionLog log(6, 7);
  exec.run(
      6, 7, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), expected);
}

TEST_P(WavefrontPolicies, MoreWorkersThanTiles) {
  // 8 workers, 4 tiles: most workers never get a tile, and on the
  // dependency-counter policy they must still wake up and exit when the
  // last tile completes.
  ThreadPool pool(8);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(2, 2);
  exec.run(
      2, 2, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_LT(worker, 8u);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kBaseCase);
  EXPECT_EQ(log.count(), 4u);
}

TEST_P(WavefrontPolicies, MoreWorkersThanTilesWithSkips) {
  // Workers > runnable tiles where skips thin the grid further: only the
  // first column of a 3x4 grid runs (down-right-closed region).
  ThreadPool pool(8);
  WavefrontExecutor exec(pool, GetParam());
  auto skip = [](std::size_t, std::size_t tj) { return tj >= 1; };
  CompletionLog log(3, 4);
  exec.run(
      3, 4, skip,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        EXPECT_FALSE(skip(ti, tj));
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 3u);
}

TEST_P(WavefrontPolicies, UnevenTileCostsStillComplete) {
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(5, 9);
  exec.run(
      5, 9, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        // Busy-wait proportional to a pseudo-random cost to shake the
        // schedule.
        int sink = 0;
        const int loops = static_cast<int>((ti * 31 + tj * 17) % 97) * 50;
        for (int i = 0; i < loops; ++i) sink += i;
        benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 45u);
}

TEST_P(WavefrontPolicies, EmptyGridIsNoop) {
  ThreadPool pool(2);
  WavefrontExecutor exec(pool, GetParam());
  exec.run(
      0, 5, nullptr,
      [&](std::size_t, std::size_t, unsigned) -> std::uint64_t {
        ADD_FAILURE() << "no tiles expected";
        return 0;
      },
      TilePhase::kFillCache);
}

TEST_P(WavefrontPolicies, ManyMoreTilesThanWorkers) {
  // Tiles >> workers: 2 workers over a 24x24 grid exercises sustained
  // queue/deque churn (and steal pressure on the work-stealing policy).
  ThreadPool pool(2);
  WavefrontExecutor exec(pool, GetParam());
  CompletionLog log(24, 24);
  exec.run(
      24, 24, nullptr,
      [&](std::size_t ti, std::size_t tj, unsigned) {
        log.complete(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  EXPECT_EQ(log.count(), 24u * 24u);
}

TEST_P(WavefrontPolicies, RaggedTileCostsAcrossManyRuns) {
  // Heavily ragged costs (two orders of magnitude spread) across repeated
  // runs on one executor — the persistent deques/counters must reset
  // cleanly between runs.
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, GetParam());
  for (int round = 0; round < 5; ++round) {
    CompletionLog log(9, 5);
    exec.run(
        9, 5, nullptr,
        [&](std::size_t ti, std::size_t tj, unsigned) {
          long sink = 0;
          const long loops =
              ((ti * 13 + tj * 7 + static_cast<std::size_t>(round)) % 11 == 0)
                  ? 5000
                  : 50;
          for (long i = 0; i < loops; ++i) sink += i;
          benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
          log.complete(ti, tj);
          return std::uint64_t{1};
        },
        TilePhase::kFillCache);
    EXPECT_EQ(log.count(), 45u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, WavefrontPolicies,
                         ::testing::Values(
                             SchedulerKind::kBarrierStaged,
                             SchedulerKind::kDependencyCounter,
                             SchedulerKind::kWorkStealing),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case SchedulerKind::kBarrierStaged:
                               return "barrier";
                             case SchedulerKind::kDependencyCounter:
                               return "dependency";
                             case SchedulerKind::kWorkStealing:
                               return "stealing";
                           }
                           return "unknown";
                         });

TEST(Wavefront, AllPoliciesVisitTheSameTileSet) {
  // Differential check: for a staircase skip on a ragged-cost grid, every
  // policy must execute exactly the same tile set, each tile exactly once.
  auto skip = [](std::size_t ti, std::size_t tj) {
    return ti + 2 * tj >= 14;
  };
  auto visited_under = [&](SchedulerKind kind) {
    ThreadPool pool(4);
    WavefrontExecutor exec(pool, kind);
    std::vector<std::atomic<int>> visits(8 * 11);
    for (auto& v : visits) v.store(0);
    exec.run(
        8, 11, skip,
        [&](std::size_t ti, std::size_t tj, unsigned) {
          visits[ti * 11 + tj].fetch_add(1);
          long sink = 0;
          for (long i = 0; i < static_cast<long>((ti * 29 + tj) % 63) * 40;
               ++i) {
            sink += i;
          }
          benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
          return std::uint64_t{1};
        },
        TilePhase::kFillCache);
    std::vector<int> counts(visits.size());
    for (std::size_t i = 0; i < visits.size(); ++i) counts[i] = visits[i];
    return counts;
  };
  const std::vector<int> barrier =
      visited_under(SchedulerKind::kBarrierStaged);
  const std::vector<int> dependency =
      visited_under(SchedulerKind::kDependencyCounter);
  const std::vector<int> stealing =
      visited_under(SchedulerKind::kWorkStealing);
  for (std::size_t ti = 0; ti < 8; ++ti) {
    for (std::size_t tj = 0; tj < 11; ++tj) {
      const int expected = skip(ti, tj) ? 0 : 1;
      EXPECT_EQ(barrier[ti * 11 + tj], expected) << ti << "," << tj;
    }
  }
  EXPECT_EQ(dependency, barrier);
  EXPECT_EQ(stealing, barrier);
}

TEST(Wavefront, WorkStealingPropagatesExceptions) {
  // A throwing tile must neither hang the quiescence loop nor be lost:
  // the first error reaches the caller.
  ThreadPool pool(4);
  WavefrontExecutor exec(pool, SchedulerKind::kWorkStealing);
  EXPECT_THROW(
      exec.run(
          6, 6, nullptr,
          [&](std::size_t ti, std::size_t tj, unsigned) -> std::uint64_t {
            if (ti == 3 && tj == 3) throw std::runtime_error("tile failed");
            return 1;
          },
          TilePhase::kFillCache),
      std::runtime_error);
}

TEST(Wavefront, SequentialExecutorRowMajorOrder) {
  SequentialExecutor exec;
  std::vector<std::pair<std::size_t, std::size_t>> order;
  exec.run(
      3, 3, [](std::size_t ti, std::size_t tj) { return ti == 2 && tj == 2; },
      [&](std::size_t ti, std::size_t tj, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.emplace_back(ti, tj);
        return std::uint64_t{1};
      },
      TilePhase::kFillCache);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(order.back(), (std::pair<std::size_t, std::size_t>{2, 1}));
}

#if !defined(FLSA_OBS_OFF)
TEST(Wavefront, BarrierSchedulerRecordsLineSpans) {
  // The barrier policy stamps one scheduler-lane span per non-empty
  // wavefront line; a 3x4 grid has 6 anti-diagonals.
  ThreadPool pool(2);
  WavefrontExecutor exec(pool, SchedulerKind::kBarrierStaged);
  obs::TraceRecorder trace;
  obs::set_active_trace(&trace);
  exec.run(
      3, 4, nullptr,
      [&](std::size_t, std::size_t, unsigned) { return std::uint64_t{1}; },
      TilePhase::kFillCache);
  obs::set_active_trace(nullptr);
  std::size_t lines = 0, tiles = 0;
  for (const obs::TraceSpan& span : trace.spans()) {
    if (std::string_view(span.name) == "wavefront-line") {
      EXPECT_EQ(span.tid, obs::kSchedulerLane);
      EXPECT_GE(span.tiles, 1);
      ++lines;
    } else if (std::string_view(span.name) == "tile") {
      ++tiles;
    }
  }
  EXPECT_EQ(lines, 6u);
  EXPECT_EQ(tiles, 12u);
}
#endif  // !defined(FLSA_OBS_OFF)

TEST(Wavefront, SchedulerNames) {
  EXPECT_STREQ(to_string(SchedulerKind::kBarrierStaged), "barrier-staged");
  EXPECT_STREQ(to_string(SchedulerKind::kDependencyCounter),
               "dependency-counter");
  EXPECT_STREQ(to_string(SchedulerKind::kWorkStealing), "work-stealing");
}

TEST(Wavefront, ParseSchedulerKind) {
  SchedulerKind kind = SchedulerKind::kBarrierStaged;
  EXPECT_TRUE(parse_scheduler_kind("stealing", &kind));
  EXPECT_EQ(kind, SchedulerKind::kWorkStealing);
  EXPECT_TRUE(parse_scheduler_kind("work-stealing", &kind));
  EXPECT_EQ(kind, SchedulerKind::kWorkStealing);
  EXPECT_TRUE(parse_scheduler_kind("dependency", &kind));
  EXPECT_EQ(kind, SchedulerKind::kDependencyCounter);
  EXPECT_TRUE(parse_scheduler_kind("dependency-counter", &kind));
  EXPECT_TRUE(parse_scheduler_kind("barrier", &kind));
  EXPECT_EQ(kind, SchedulerKind::kBarrierStaged);
  EXPECT_TRUE(parse_scheduler_kind("barrier-staged", &kind));
  kind = SchedulerKind::kWorkStealing;
  EXPECT_FALSE(parse_scheduler_kind("fifo", &kind));
  EXPECT_EQ(kind, SchedulerKind::kWorkStealing);  // untouched on failure
}

TEST(StealDeque, OwnerLifoThiefFifo) {
  StealDeque deque;
  deque.prepare(8);
  deque.push(10);
  deque.push(11);
  deque.push(12);
  EXPECT_EQ(deque.depth_hint(), 3);

  std::uint32_t v = 0;
  ASSERT_TRUE(deque.pop(&v));  // owner pops the newest
  EXPECT_EQ(v, 12u);
  ASSERT_TRUE(deque.steal(&v));  // thief takes the oldest
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(deque.pop(&v));
  EXPECT_EQ(v, 11u);
  EXPECT_FALSE(deque.pop(&v));
  EXPECT_FALSE(deque.steal(&v));
}

TEST(StealDeque, PrepareResetsAcrossRuns) {
  StealDeque deque;
  for (int run = 0; run < 3; ++run) {
    deque.prepare(4);
    EXPECT_EQ(deque.depth_hint(), 0);
    deque.push(static_cast<std::uint32_t>(run));
    std::uint32_t v = 99;
    ASSERT_TRUE(deque.steal(&v));
    EXPECT_EQ(v, static_cast<std::uint32_t>(run));
    EXPECT_FALSE(deque.steal(&v));
  }
}

TEST(StealDeque, ConcurrentDrainDeliversEachValueOnce) {
  // One owner pushing/popping, three thieves stealing: every pushed value
  // must be taken exactly once. (Run under TSan in CI.)
  constexpr std::uint32_t kValues = 2000;
  StealDeque deque;
  deque.prepare(kValues);
  std::vector<std::atomic<int>> taken(kValues);
  for (auto& t : taken) t.store(0);
  std::atomic<std::uint32_t> total_taken{0};

  auto consume = [&](std::uint32_t v) {
    taken[v].fetch_add(1);
    total_taken.fetch_add(1);
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      std::uint32_t v = 0;
      while (total_taken.load() < kValues) {
        if (deque.steal(&v)) consume(v);
      }
    });
  }
  // Owner: push in bursts, occasionally popping its own work.
  std::uint32_t next = 0;
  while (next < kValues) {
    const std::uint32_t burst = std::min<std::uint32_t>(7, kValues - next);
    for (std::uint32_t i = 0; i < burst; ++i) deque.push(next++);
    std::uint32_t v = 0;
    if (deque.pop(&v)) consume(v);
  }
  for (auto& thief : thieves) thief.join();
  EXPECT_EQ(total_taken.load(), kValues);
  for (std::uint32_t v = 0; v < kValues; ++v) {
    EXPECT_EQ(taken[v].load(), 1) << "value " << v;
  }
}

}  // namespace
}  // namespace flsa
