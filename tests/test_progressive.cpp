// Tests for profiles, profile-profile alignment, UPGMA and progressive
// multiple alignment.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "msa/progressive.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

std::string degap(const std::string& row) {
  std::string out;
  for (char c : row) {
    if (c != '-') out.push_back(c);
  }
  return out;
}

TEST(Profile, SingleSequenceCounts) {
  const Sequence s(Alphabet::dna(), "ACGA");
  const msa::Profile p(s);
  EXPECT_EQ(p.width(), 4u);
  EXPECT_EQ(p.depth(), 1u);
  EXPECT_EQ(p.counts(0)[Alphabet::dna().code('A')], 1u);
  EXPECT_EQ(p.gaps(0), 0u);
  EXPECT_EQ(p.residues(0), 1u);
}

TEST(Profile, GappedRowsCounts) {
  msa::Profile p(Alphabet::dna(), {"AC-G", "A--G", "TC-G"});
  EXPECT_EQ(p.width(), 4u);
  EXPECT_EQ(p.depth(), 3u);
  EXPECT_EQ(p.counts(0)[Alphabet::dna().code('A')], 2u);
  EXPECT_EQ(p.counts(0)[Alphabet::dna().code('T')], 1u);
  EXPECT_EQ(p.gaps(1), 1u);
  EXPECT_EQ(p.gaps(2), 3u);
  EXPECT_EQ(p.residues(3), 3u);
}

TEST(Profile, RejectsRaggedRows) {
  EXPECT_THROW(msa::Profile(Alphabet::dna(), {"AC", "A"}),
               std::invalid_argument);
  EXPECT_THROW(msa::Profile(Alphabet::dna(), {}), std::invalid_argument);
}

TEST(Profile, ColumnPairScoreSumsAllPairs) {
  // Column {A, A} vs {A, C}: pairs AA, AC, AA, AC = 5 - 4 + 5 - 4 = 2.
  msa::Profile p1(Alphabet::dna(), {"A", "A"});
  msa::Profile p2(Alphabet::dna(), {"A", "C"});
  EXPECT_EQ(msa::column_pair_score(p1, 0, p2, 0, scheme()), 2);
  // Column {A, -} vs {C}: pairs AC (-4), -C (gap -6) = -10.
  msa::Profile p3(Alphabet::dna(), {"A", "-"});
  msa::Profile p4(Alphabet::dna(), {"C"});
  EXPECT_EQ(msa::column_pair_score(p3, 0, p4, 0, scheme()), -10);
}

TEST(ProfileAlign, TwoSingletonsEqualsPairwiseAlignment) {
  Xoshiro256 rng(221);
  MutationModel model;
  for (int trial = 0; trial < 10; ++trial) {
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), 30 + rng.bounded(60), model, rng);
    const msa::Profile merged = msa::align_profiles(
        msa::Profile(pair.a), msa::Profile(pair.b), scheme());
    ASSERT_EQ(merged.depth(), 2u);
    Alignment as_pairwise;
    as_pairwise.gapped_a = merged.rows()[0];
    as_pairwise.gapped_b = merged.rows()[1];
    EXPECT_EQ(score_alignment(as_pairwise, scheme(), Alphabet::dna()),
              full_matrix_score(pair.a, pair.b, scheme()));
  }
}

TEST(ProfileAlign, PreservesRowContents) {
  msa::Profile p1(Alphabet::dna(), {"ACGT-A", "AC-TTA"});
  msa::Profile p2(Alphabet::dna(), {"CGTA"});
  const msa::Profile merged = msa::align_profiles(p1, p2, scheme());
  EXPECT_EQ(merged.depth(), 3u);
  EXPECT_EQ(degap(merged.rows()[0]), "ACGTA");
  EXPECT_EQ(degap(merged.rows()[1]), "ACTTA");
  EXPECT_EQ(degap(merged.rows()[2]), "CGTA");
}

TEST(Upgma, PairAndTriple) {
  // Two leaves: root joins them at half the distance.
  const msa::GuideTree pair = msa::upgma({{0, 4}, {4, 0}});
  ASSERT_EQ(pair.nodes.size(), 3u);
  EXPECT_EQ(pair.root, 2);
  EXPECT_DOUBLE_EQ(pair.nodes[2].height, 2.0);

  // Three leaves with 0,1 closest: they join first.
  const msa::GuideTree triple = msa::upgma(
      {{0, 2, 8}, {2, 0, 8}, {8, 8, 0}});
  ASSERT_EQ(triple.nodes.size(), 5u);
  const msa::GuideNode& first_join = triple.nodes[3];
  EXPECT_EQ(first_join.left, 0);
  EXPECT_EQ(first_join.right, 1);
  const msa::GuideNode& root = triple.nodes[4];
  EXPECT_EQ(root.right, 2);
  EXPECT_DOUBLE_EQ(root.height, 4.0);  // avg(8, 8) / 2
}

TEST(Upgma, ValidatesInput) {
  EXPECT_THROW(msa::upgma({}), std::invalid_argument);
  EXPECT_THROW(msa::upgma({{0, 1}}), std::invalid_argument);
}

TEST(AlignmentDistances, ZeroOnDiagonalSymmetricPositive) {
  Xoshiro256 rng(222);
  MutationModel model;
  std::vector<Sequence> seqs;
  const Sequence ancestor = random_sequence(Alphabet::dna(), 60, rng);
  for (int i = 0; i < 4; ++i) seqs.push_back(mutate(ancestor, model, rng));
  const auto d = msa::alignment_distances(seqs, scheme());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(d[i][i], 0.0);
    for (std::size_t j = 0; j < seqs.size(); ++j) {
      EXPECT_EQ(d[i][j], d[j][i]);
      if (i != j) {
        EXPECT_GT(d[i][j], 0.0);
      }
    }
  }
}

TEST(Progressive, RowsDegapToInputs) {
  Xoshiro256 rng(223);
  MutationModel model;
  model.substitution_rate = 0.15;
  const Sequence ancestor = random_sequence(Alphabet::dna(), 100, rng);
  std::vector<Sequence> seqs;
  for (int i = 0; i < 6; ++i) seqs.push_back(mutate(ancestor, model, rng));
  const msa::MultipleAlignment aln =
      msa::progressive_align(seqs, scheme());
  ASSERT_EQ(aln.rows.size(), seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(degap(aln.rows[i]), seqs[i].to_string()) << "row " << i;
    EXPECT_EQ(aln.rows[i].size(), aln.width());
  }
}

TEST(Progressive, TwoSequencesOptimal) {
  Xoshiro256 rng(224);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 70, model, rng);
  const msa::MultipleAlignment aln =
      msa::progressive_align({pair.a, pair.b}, scheme());
  EXPECT_EQ(msa::sum_of_pairs_score(aln, scheme(), Alphabet::dna()),
            full_matrix_score(pair.a, pair.b, scheme()));
}

TEST(Progressive, CompetitiveWithCenterStar) {
  // On a two-subfamily dataset (where the star topology is a poor fit)
  // the guide tree should match or beat center-star's sum of pairs.
  Xoshiro256 rng(225);
  MutationModel drift;
  drift.substitution_rate = 0.25;
  const Sequence rootseq = random_sequence(Alphabet::dna(), 90, rng);
  const Sequence branch_a = mutate(rootseq, drift, rng);
  const Sequence branch_b = mutate(rootseq, drift, rng);
  MutationModel leaf;
  leaf.substitution_rate = 0.05;
  std::vector<Sequence> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(mutate(branch_a, leaf, rng));
  for (int i = 0; i < 3; ++i) seqs.push_back(mutate(branch_b, leaf, rng));

  const Score star = msa::sum_of_pairs_score(
      msa::center_star_align(seqs, scheme()), scheme(), Alphabet::dna());
  const Score prog = msa::sum_of_pairs_score(
      msa::progressive_align(seqs, scheme()), scheme(), Alphabet::dna());
  EXPECT_GE(prog, star);
}

TEST(Progressive, SingleSequenceAndValidation) {
  const Sequence s(Alphabet::dna(), "ACGT");
  const msa::MultipleAlignment aln = msa::progressive_align({s}, scheme());
  ASSERT_EQ(aln.rows.size(), 1u);
  EXPECT_EQ(aln.rows[0], "ACGT");
  EXPECT_THROW(msa::progressive_align({}, scheme()),
               std::invalid_argument);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  EXPECT_THROW(msa::progressive_align({s, s}, affine),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
