// Differential tests for the SIMD anti-diagonal kernels: every sweep must
// produce bit-identical boundary rows/columns and counters to the scalar
// reference, across alphabets, schemes (linear and affine), shapes from 0
// to 300 residues, and arbitrary (non-global) boundary caches.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dp/gotoh.hpp"
#include "dp/kernel.hpp"
#include "dp/kernel_simd.hpp"
#include "dp/query_profile.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"
#include "support/prng.hpp"

namespace flsa {
namespace {

// All builtin scoring schemes the repo ships, linear-gap flavour.
std::vector<std::pair<const char*, ScoringScheme>> linear_schemes() {
  static const SubstitutionMatrix dna = scoring::dna(5, -4);
  static const SubstitutionMatrix dna_n = scoring::dna_n();
  static const SubstitutionMatrix lcs =
      scoring::identity(Alphabet::dna(), 1, 0);
  std::vector<std::pair<const char*, ScoringScheme>> schemes;
  schemes.emplace_back("mdm78", ScoringScheme::paper_default());
  schemes.emplace_back("pam250", ScoringScheme(scoring::pam250(), -8));
  schemes.emplace_back("blosum62", ScoringScheme(scoring::blosum62(), -4));
  schemes.emplace_back("dna", ScoringScheme(dna, -6));
  schemes.emplace_back("dna_n", ScoringScheme(dna_n, -6));
  schemes.emplace_back("lcs", ScoringScheme(lcs, 0));
  return schemes;
}

std::vector<std::pair<const char*, ScoringScheme>> affine_schemes() {
  static const SubstitutionMatrix dna = scoring::dna(5, -4);
  std::vector<std::pair<const char*, ScoringScheme>> schemes;
  schemes.emplace_back("blosum62", ScoringScheme(scoring::blosum62(), -11, -1));
  schemes.emplace_back("pam250", ScoringScheme(scoring::pam250(), -10, -2));
  schemes.emplace_back("dna", ScoringScheme(dna, -8, -2));
  schemes.emplace_back("mdm78", ScoringScheme(scoring::mdm78(), -30, -20));
  return schemes;
}

// Arbitrary boundary caches (what the kernels see mid-grid in FastLSA):
// random values, equal corners.
std::vector<Score> random_boundary(std::size_t len, Xoshiro256& rng,
                                   Score corner) {
  std::vector<Score> boundary(len);
  if (boundary.empty()) return boundary;
  boundary[0] = corner;
  for (std::size_t i = 1; i < len; ++i) {
    boundary[i] = static_cast<Score>(rng() % 101) - 50;
  }
  return boundary;
}

std::vector<AffineCell> random_affine_boundary(std::size_t len,
                                               Xoshiro256& rng,
                                               AffineCell corner) {
  std::vector<AffineCell> boundary(len);
  if (boundary.empty()) return boundary;
  boundary[0] = corner;
  for (std::size_t i = 1; i < len; ++i) {
    const auto v = [&] { return static_cast<Score>(rng() % 101) - 50; };
    boundary[i] = AffineCell{v(), v(), v()};
  }
  return boundary;
}

// The shapes exercised by the differential sweeps. Deliberately includes
// degenerate rectangles, lengths around the lane widths (4, 8) and their
// remainders, and a 300-residue long edge.
const std::pair<std::size_t, std::size_t> kShapes[] = {
    {0, 0},  {0, 7},   {7, 0},    {1, 1},   {1, 300},  {300, 1},
    {2, 2},  {3, 5},   {4, 4},    {5, 3},   {7, 9},    {8, 8},
    {9, 7},  {13, 31}, {16, 16},  {17, 64}, {64, 17},  {100, 100},
    {128, 3}, {3, 128}, {255, 33}, {33, 255}, {300, 300}};

class SimdLinear
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SimdLinear, SweepMatchesScalarBitForBit) {
  const auto [m, n] = GetParam();
  for (const auto& [name, scheme] : linear_schemes()) {
    const Alphabet& alphabet = scheme.matrix().alphabet();
    Xoshiro256 rng(977 * m + 31 * n + 1);
    const Sequence a = random_sequence(alphabet, m, rng);
    const Sequence b = random_sequence(alphabet, n, rng);
    const Score corner = static_cast<Score>(rng() % 41) - 20;
    const std::vector<Score> top = random_boundary(n + 1, rng, corner);
    const std::vector<Score> left = random_boundary(m + 1, rng, corner);

    std::vector<Score> bottom_s(n + 1), right_s(m + 1);
    std::vector<Score> bottom_v(n + 1), right_v(m + 1);
    DpCounters counters_s, counters_v;
    sweep_rectangle_linear(a.residues(), b.residues(), scheme, top, left,
                           bottom_s, right_s, &counters_s);
    sweep_rectangle_linear_simd(a.residues(), b.residues(), scheme, top,
                                left, bottom_v, right_v, &counters_v);
    EXPECT_EQ(bottom_v, bottom_s) << name << " " << m << "x" << n;
    EXPECT_EQ(right_v, right_s) << name << " " << m << "x" << n;
    EXPECT_EQ(counters_v.cells_scored, counters_s.cells_scored) << name;
    EXPECT_EQ(counters_v.cells_stored, counters_s.cells_stored) << name;
  }
}

TEST_P(SimdLinear, InPlaceAliasedSweepMatchesScalar) {
  const auto [m, n] = GetParam();
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  Xoshiro256 rng(501 * m + n);
  const Sequence a = random_sequence(Alphabet::protein(), m, rng);
  const Sequence b = random_sequence(Alphabet::protein(), n, rng);

  std::vector<Score> row_s(n + 1), row_v(n + 1), left(m + 1);
  init_global_boundary_linear(scheme, row_s);
  init_global_boundary_linear(scheme, left);
  row_v = row_s;
  sweep_rectangle_linear(a.residues(), b.residues(), scheme, row_s, left,
                         row_s, {});
  sweep_rectangle_linear_simd(a.residues(), b.residues(), scheme, row_v,
                              left, row_v, {});
  EXPECT_EQ(row_v, row_s);
}

TEST_P(SimdLinear, ProfiledLastRowMatchesScalar) {
  const auto [m, n] = GetParam();
  for (const auto& [name, scheme] : linear_schemes()) {
    const Alphabet& alphabet = scheme.matrix().alphabet();
    Xoshiro256 rng(7 * m + 13 * n + 5);
    const Sequence a = random_sequence(alphabet, m, rng);
    const Sequence b = random_sequence(alphabet, n, rng);
    const QueryProfile profile(b.residues(), scheme.matrix());
    DpCounters counters_s, counters_v;
    const std::vector<Score> row_s =
        last_row_profiled(a.residues(), profile, scheme, &counters_s);
    const std::vector<Score> row_v =
        last_row_profiled_simd(a.residues(), profile, scheme, &counters_v);
    EXPECT_EQ(row_v, row_s) << name << " " << m << "x" << n;
    EXPECT_EQ(counters_v.cells_scored, counters_s.cells_scored) << name;
  }
}

class SimdAffine
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SimdAffine, SweepMatchesScalarBitForBit) {
  const auto [m, n] = GetParam();
  for (const auto& [name, scheme] : affine_schemes()) {
    const Alphabet& alphabet = scheme.matrix().alphabet();
    Xoshiro256 rng(389 * m + 17 * n + 2);
    const Sequence a = random_sequence(alphabet, m, rng);
    const Sequence b = random_sequence(alphabet, n, rng);
    const auto v = [&] { return static_cast<Score>(rng() % 41) - 20; };
    const AffineCell corner{v(), v(), v()};
    const std::vector<AffineCell> top =
        random_affine_boundary(n + 1, rng, corner);
    const std::vector<AffineCell> left =
        random_affine_boundary(m + 1, rng, corner);

    std::vector<AffineCell> bottom_s(n + 1), right_s(m + 1);
    std::vector<AffineCell> bottom_v(n + 1), right_v(m + 1);
    DpCounters counters_s, counters_v;
    sweep_rectangle_affine(a.residues(), b.residues(), scheme, top, left,
                           bottom_s, right_s, &counters_s);
    sweep_rectangle_affine_simd(a.residues(), b.residues(), scheme, top,
                                left, bottom_v, right_v, &counters_v);
    EXPECT_EQ(bottom_v, bottom_s) << name << " " << m << "x" << n;
    EXPECT_EQ(right_v, right_s) << name << " " << m << "x" << n;
    EXPECT_EQ(counters_v.cells_scored, counters_s.cells_scored) << name;
  }
}

TEST_P(SimdAffine, GlobalBoundarySweepMatchesScalar) {
  const auto [m, n] = GetParam();
  const ScoringScheme scheme(scoring::blosum62(), -11, -1);
  Xoshiro256 rng(811 * m + n);
  const Sequence a = random_sequence(Alphabet::protein(), m, rng);
  const Sequence b = random_sequence(Alphabet::protein(), n, rng);
  std::vector<AffineCell> top(n + 1), left(m + 1);
  init_global_boundary_affine(scheme, top, /*horizontal=*/true);
  init_global_boundary_affine(scheme, left, /*horizontal=*/false);
  left[0] = top[0];

  std::vector<AffineCell> row_s = top, row_v = top;
  sweep_rectangle_affine(a.residues(), b.residues(), scheme, row_s, left,
                         row_s, {});
  sweep_rectangle_affine_simd(a.residues(), b.residues(), scheme, row_v,
                              left, row_v, {});
  EXPECT_EQ(row_v, row_s);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SimdLinear, ::testing::ValuesIn(kShapes));
INSTANTIATE_TEST_SUITE_P(Shapes, SimdAffine, ::testing::ValuesIn(kShapes));

TEST(SimdKernel, DispatchOverloadsAgreeWithScalar) {
  Xoshiro256 rng(42);
  const Sequence a = random_sequence(Alphabet::protein(), 113, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 97, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Score expect =
      global_score_linear(a.residues(), b.residues(), scheme);
  for (const KernelKind kind :
       {KernelKind::kAuto, KernelKind::kScalar, KernelKind::kSimd}) {
    EXPECT_EQ(global_score_linear(kind, a.residues(), b.residues(), scheme),
              expect)
        << to_string(kind);
    EXPECT_EQ(
        last_row_linear(kind, a.residues(), b.residues(), scheme).back(),
        expect)
        << to_string(kind);
    EXPECT_EQ(
        global_score_profiled(kind, a.residues(), b.residues(), scheme),
        expect)
        << to_string(kind);
  }
}

TEST(SimdKernel, PaperExampleScoresEightyTwo) {
  // The paper's Figure 1 MDM78 example, pushed through the vector lanes.
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  EXPECT_EQ(global_score_linear(KernelKind::kSimd, a.residues(),
                                b.residues(), ScoringScheme::paper_default()),
            82);
}

TEST(SimdKernel, ResolveAndNames) {
  EXPECT_NE(resolve_kernel(KernelKind::kAuto), KernelKind::kAuto);
  EXPECT_EQ(resolve_kernel(KernelKind::kScalar), KernelKind::kScalar);
  EXPECT_EQ(resolve_kernel(KernelKind::kSimd), KernelKind::kSimd);
  if (simd_kernel_available()) {
    EXPECT_EQ(resolve_kernel(KernelKind::kAuto), KernelKind::kSimd);
  } else {
    EXPECT_EQ(resolve_kernel(KernelKind::kAuto), KernelKind::kScalar);
    EXPECT_STREQ(simd_kernel_isa(), "scalar");
  }
  KernelKind kind = KernelKind::kAuto;
  for (const char* name : {"auto", "scalar", "simd"}) {
    EXPECT_TRUE(parse_kernel_kind(name, &kind)) << name;
    EXPECT_STREQ(to_string(kind), name);
  }
  EXPECT_FALSE(parse_kernel_kind("avx512", &kind));
}

TEST(SimdKernel, RejectsMismatchedBoundaries) {
  const Sequence a(Alphabet::dna(), "ACG");
  const Sequence b(Alphabet::dna(), "AC");
  const ScoringScheme scheme(scoring::dna(), -6);
  std::vector<Score> top(3), left(4), bottom(3);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  if (simd_kernel_available()) {
    std::vector<Score> bad_top(2);
    EXPECT_THROW(
        sweep_rectangle_linear_simd(a.residues(), b.residues(), scheme,
                                    bad_top, left, bottom, {}),
        std::invalid_argument);
  }
  // The affine guard is shared with the scalar kernel either way.
  const ScoringScheme affine(scoring::dna(), -5, -1);
  EXPECT_THROW(sweep_rectangle_linear_simd(a.residues(), b.residues(),
                                           affine, top, left, bottom, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
