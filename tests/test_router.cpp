// Router-tier integration tests: shard-map placement, deadline-budget
// arithmetic, and the front tier end-to-end over loopback against real
// AlignmentServer backends — routing, replication, coalescing with
// per-request demux, failover, ejection, and local deadline enforcement.
// The contract mirrors the backend's: every request ends in a response
// bit-identical to direct align() or a typed error, never a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/aligner.hpp"
#include "obs/metrics.hpp"
#include "router/router.hpp"
#include "router/shard_map.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "service/client.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"

namespace flsa {
namespace router {
namespace {

using service::AlignmentServer;
using service::AlignRequest;
using service::AlignResponse;
using service::Client;
using service::ErrorCode;
using service::ErrorResponse;
using service::RefPutRequest;
using service::RefPutResponse;
using service::Response;
using service::SearchRequest;
using service::SearchResponse;
using service::ServiceConfig;
using service::StatsRequest;
using service::StatsResponse;
using service::WireMatrix;

AlignRequest protein_request(const std::string& a, const std::string& b) {
  AlignRequest request;
  request.matrix = WireMatrix::kMdm78;
  request.gap_extend = -10;
  request.a = a;
  request.b = b;
  return request;
}

Alignment direct_align(const std::string& a, const std::string& b) {
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  return align(Sequence(Alphabet::protein(), a),
               Sequence(Alphabet::protein(), b),
               ScoringScheme(scoring::mdm78(), -10), options);
}

/// N loopback backends plus one router in front, all in-process.
struct Fleet {
  std::vector<std::unique_ptr<AlignmentServer>> backends;
  std::unique_ptr<Router> router;

  explicit Fleet(std::size_t n, RouterConfig config = {},
                 ServiceConfig backend_config = {}) {
    backend_config.workers =
        backend_config.workers == 0 ? 2 : backend_config.workers;
    for (std::size_t i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<AlignmentServer>(backend_config));
      backends.back()->start();
      config.backends.push_back({"127.0.0.1", backends.back()->port()});
    }
    router = std::make_unique<Router>(config);
    router->start();
  }

  ~Fleet() {
    router->stop();
    for (auto& backend : backends) backend->stop();
  }

  Client connect() {
    Client client;
    client.connect("127.0.0.1", router->port());
    return client;
  }
};

std::uint64_t counter(const char* name) {
  return obs::metrics().counter(name).value();
}

// ---- ShardMap ---------------------------------------------------------

TEST(ShardMap, ReplicasAreDeterministicDistinctAndRanked) {
  const ShardMap map(5, 3);
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const std::vector<std::size_t> first = map.replicas(key);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first, map.replicas(key)) << "placement is not stable";
    const std::set<std::size_t> distinct(first.begin(), first.end());
    EXPECT_EQ(distinct.size(), 3u) << "a replica repeats for key " << key;
    EXPECT_EQ(first.front(), map.primary(key));
    // Best-score-first ranking.
    EXPECT_GE(ShardMap::weight(key, first[0]), ShardMap::weight(key, first[1]));
    EXPECT_GE(ShardMap::weight(key, first[1]), ShardMap::weight(key, first[2]));
  }
}

TEST(ShardMap, ReplicationIsCappedByTheBackendCount) {
  const ShardMap map(2, 5);
  EXPECT_EQ(map.replication(), 2u);
  EXPECT_EQ(map.replicas(7).size(), 2u);
}

TEST(ShardMap, PlacementSpreadsAcrossBackends) {
  const ShardMap map(4, 1);
  std::map<std::size_t, int> owners;
  for (std::uint64_t key = 0; key < 400; ++key) owners[map.primary(key)]++;
  ASSERT_EQ(owners.size(), 4u) << "some backend owns nothing";
  for (const auto& [backend, count] : owners) {
    EXPECT_GT(count, 40) << "backend " << backend
                         << " is badly underweighted";
  }
}

TEST(ShardMap, AddingABackendOnlyMovesTheKeysItWins) {
  // The rendezvous property: growing the fleet from 7 to 8 moves a key
  // only when the new backend outranks all old ones (expected 1/8 of
  // keys), and every moved key moves *to* the new backend.
  const ShardMap before(7, 1);
  const ShardMap after(8, 1);
  int moved = 0;
  for (std::uint64_t key = 0; key < 400; ++key) {
    const std::size_t was = before.primary(key);
    const std::size_t is = after.primary(key);
    if (was != is) {
      EXPECT_EQ(is, 7u) << "key " << key << " moved to an old backend";
      ++moved;
    }
  }
  EXPECT_GT(moved, 10);   // the new backend does win some keys
  EXPECT_LT(moved, 120);  // ... but nowhere near a full reshuffle
}

// ---- Deadline budget --------------------------------------------------

TEST(RouterDeadline, BudgetArithmetic) {
  using clock = std::chrono::steady_clock;
  const clock::time_point arrival = clock::now();
  // No deadline: sentinel -1, never expires.
  EXPECT_EQ(Router::remaining_deadline_ms(0, arrival, arrival), -1);
  EXPECT_EQ(Router::remaining_deadline_ms(
                0, arrival, arrival + std::chrono::hours(1)),
            -1);
  // Fresh arrival: the full budget.
  EXPECT_EQ(Router::remaining_deadline_ms(100, arrival, arrival), 100);
  // Partially spent.
  EXPECT_EQ(Router::remaining_deadline_ms(
                100, arrival, arrival + std::chrono::milliseconds(30)),
            70);
  // Spent and overspent both clamp to 0 — "expired", not negative.
  EXPECT_EQ(Router::remaining_deadline_ms(
                100, arrival, arrival + std::chrono::milliseconds(100)),
            0);
  EXPECT_EQ(Router::remaining_deadline_ms(
                100, arrival, arrival + std::chrono::seconds(5)),
            0);
}

// ---- End-to-end -------------------------------------------------------

TEST(Router, AlignThroughTheRouterIsBitIdenticalToDirect) {
  Fleet fleet(2);
  Client client = fleet.connect();
  const Alignment expected = direct_align("TLDKLLKD", "TDVLKAD");
  for (int i = 0; i < 6; ++i) {
    const Response response =
        client.call(protein_request("TLDKLLKD", "TDVLKAD"));
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->score, expected.score);
    EXPECT_EQ(ok->cigar, expected.cigar());
  }
}

TEST(Router, PipelinedAlignsCoalesceAndDemuxById) {
  RouterConfig config;
  config.channels_per_backend = 1;
  config.coalesce_max_jobs = 8;
  Fleet fleet(1, config);
  Client client = fleet.connect();

  const std::uint64_t batches_before = counter("router.coalesce.batches");
  const Score score_a = direct_align("TLDKLLKD", "TDVLKAD").score;
  const Score score_b = direct_align("HEAGAWGHEE", "PAWHEAE").score;

  // Pipeline 64 small aligns of two different pairs; responses may come
  // back in any order (coalesced batches demux to per-job answers), so
  // match scores by request id.
  std::map<std::uint64_t, Score> expected;
  for (int i = 0; i < 64; ++i) {
    const bool odd = (i % 2) != 0;
    const std::uint64_t id = client.send(
        odd ? protein_request("HEAGAWGHEE", "PAWHEAE")
            : protein_request("TLDKLLKD", "TDVLKAD"));
    expected[id] = odd ? score_b : score_a;
  }
  for (int i = 0; i < 64; ++i) {
    const Response response = client.receive();
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr) << "response " << i << " was not ALIGN_OK";
    const auto it = expected.find(ok->request_id);
    ASSERT_NE(it, expected.end()) << "unknown id " << ok->request_id;
    EXPECT_EQ(ok->score, it->second) << "wrong score for id " << ok->request_id;
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty()) << expected.size() << " requests unanswered";
  // With one channel and 64 back-to-back sends, at least some admission
  // windows must have folded queued jobs together.
  EXPECT_GT(counter("router.coalesce.batches"), batches_before)
      << "no batch ever formed";
}

TEST(Router, ClientBuiltBatchPassesThroughAsAUnit) {
  Fleet fleet(2);
  Client client = fleet.connect();
  service::AlignBatchRequest batch;
  AlignRequest first = protein_request("TLDKLLKD", "TDVLKAD");
  first.request_id = 41;
  batch.jobs.push_back(first);
  AlignRequest second = protein_request("HEAGAWGHEE", "PAWHEAE");
  second.request_id = 42;
  batch.jobs.push_back(second);

  const Response response = client.call(std::move(batch));
  const auto* out = std::get_if<service::AlignBatchResponse>(&response);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->items.size(), 2u);
  const auto* a = std::get_if<AlignResponse>(&out->items[0]);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->request_id, 41u);  // the client's job ids survive the hop
  EXPECT_EQ(a->score, direct_align("TLDKLLKD", "TDVLKAD").score);
  const auto* b = std::get_if<AlignResponse>(&out->items[1]);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->request_id, 42u);
  EXPECT_EQ(b->score, direct_align("HEAGAWGHEE", "PAWHEAE").score);
}

TEST(Router, RefPutReplicatesAndSearchMatchesASingleBackend) {
  RouterConfig config;
  config.replication = 2;
  Fleet fleet(2, config);

  const std::string reference =
      "TLDKLLKDTDVLKADHEAGAWGHEEPAWHEAETLDKLLKDWGHEETDVLKAD";
  const std::string query = "TLDKLLKDTDVLKAD";

  // Expected answer: the same REF_PUT + SEARCH against one backend
  // directly (both replicas build identical indexes, so the router's
  // choice between them must not matter).
  service::WireHit expected_hit{};
  {
    Client direct;
    direct.connect("127.0.0.1", fleet.backends[0]->port());
    RefPutRequest put;
    put.matrix = WireMatrix::kMdm78;
    put.sequence = reference;
    const Response put_response = direct.call(std::move(put));
    const auto* ok = std::get_if<RefPutResponse>(&put_response);
    ASSERT_NE(ok, nullptr);
    SearchRequest search;
    search.ref_id = ok->ref_id;
    search.matrix = WireMatrix::kMdm78;
    search.gap_extend = -10;
    search.query = query;
    const Response search_response = direct.call(std::move(search));
    const auto* hits = std::get_if<SearchResponse>(&search_response);
    ASSERT_NE(hits, nullptr);
    ASSERT_FALSE(hits->hits.empty());
    expected_hit = hits->hits.front();
  }

  Client client = fleet.connect();
  RefPutRequest put;
  put.matrix = WireMatrix::kMdm78;
  put.sequence = reference;
  const Response put_response = client.call(std::move(put));
  const auto* put_ok = std::get_if<RefPutResponse>(&put_response);
  ASSERT_NE(put_ok, nullptr);
  EXPECT_EQ(put_ok->residues, reference.size());

  // Both backends now hold the index: the registered-reference counters
  // must have advanced on each.
  for (int round = 0; round < 8; ++round) {
    SearchRequest search;
    search.ref_id = put_ok->ref_id;  // the *router's* reference id
    search.matrix = WireMatrix::kMdm78;
    search.gap_extend = -10;
    search.query = query;
    const Response response = client.call(std::move(search));
    const auto* ok = std::get_if<SearchResponse>(&response);
    ASSERT_NE(ok, nullptr);
    ASSERT_FALSE(ok->hits.empty());
    EXPECT_EQ(ok->hits.front().score, expected_hit.score);
    EXPECT_EQ(ok->hits.front().q_begin, expected_hit.q_begin);
    EXPECT_EQ(ok->hits.front().q_end, expected_hit.q_end);
    EXPECT_EQ(ok->hits.front().s_begin, expected_hit.s_begin);
    EXPECT_EQ(ok->hits.front().s_end, expected_hit.s_end);
    EXPECT_EQ(ok->hits.front().cigar, expected_hit.cigar);
  }
}

TEST(Router, SearchForAnUnknownReferenceIsAnsweredLocally) {
  Fleet fleet(2);
  Client client = fleet.connect();
  SearchRequest search;
  search.ref_id = 777;  // never registered through this router
  search.matrix = WireMatrix::kMdm78;
  search.query = "TLDKLLKD";
  const Response response = client.call(std::move(search));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
}

TEST(Router, RefPutToleratesADeadReplicaAndCountsDegradation) {
  RouterConfig config;
  config.replication = 2;
  Fleet fleet(2, config);
  fleet.backends[1]->stop();  // one replica target is gone
  const std::uint64_t degraded_before = counter("router.ref_put.degraded");

  Client client = fleet.connect();
  RefPutRequest put;
  put.matrix = WireMatrix::kMdm78;
  put.sequence = "TLDKLLKDTDVLKADHEAGAWGHEEPAWHEAE";
  const Response put_response = client.call(std::move(put));
  const auto* ok = std::get_if<RefPutResponse>(&put_response);
  ASSERT_NE(ok, nullptr) << "one live replica must be enough";
  EXPECT_EQ(counter("router.ref_put.degraded"), degraded_before + 1);

  SearchRequest search;
  search.ref_id = ok->ref_id;
  search.matrix = WireMatrix::kMdm78;
  search.gap_extend = -10;
  search.query = "TLDKLLKD";
  const Response response = client.call(std::move(search));
  EXPECT_TRUE(std::holds_alternative<SearchResponse>(response))
      << "the surviving replica must serve the search";
}

TEST(Router, BackendDeathIsAbsorbedByFailoverAndEjection) {
  RouterConfig config;
  config.health_interval_ms = 50;
  Fleet fleet(2, config);
  Client client = fleet.connect();
  const Response warm = client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  ASSERT_TRUE(std::holds_alternative<AlignResponse>(warm));

  const std::uint64_t ejected_before = counter("router.backend.ejected");
  fleet.backends[0]->stop();
  // Give the prober a few intervals to eject the corpse.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_GT(counter("router.backend.ejected"), ejected_before);
  EXPECT_EQ(obs::metrics().gauge("router.backends_healthy").value(), 1.0);

  const Score expected = direct_align("TLDKLLKD", "TDVLKAD").score;
  for (int i = 0; i < 8; ++i) {
    const Response response =
        client.call(protein_request("TLDKLLKD", "TDVLKAD"));
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr) << "request " << i
                           << " failed after backend death";
    EXPECT_EQ(ok->score, expected);
  }
}

TEST(Router, ExpiredDeadlineIsAnsweredLocallyNotByTheBackend) {
  RouterConfig config;
  config.hedge_enabled = false;  // a hedge would just duplicate the wait
  ServiceConfig slow;
  slow.fault_plan = service::parse_fault_plan("seed=5,delay=1:400");
  Fleet fleet(1, config, slow);
  Client client = fleet.connect();

  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  request.deadline_ms = 60;
  const auto start = std::chrono::steady_clock::now();
  const Response response = client.call(std::move(request));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kDeadlineExceeded);
  // The router's monitor must answer about when the budget dies (~60ms),
  // not when the delayed backend finally does (~400ms).
  EXPECT_LT(elapsed.count(), 350)
      << "deadline was enforced by the backend, not the router";
}

TEST(Router, StreamedUploadsThroughTheRouterAlignByHandle) {
  // Two uploads sharing a placement key must land on one backend, and
  // an ALIGN_REF naming both router handles must be routed there and
  // answer bit-identically to the buffered ALIGN verb via the router.
  Fleet fleet(2);
  Client client = fleet.connect();

  const std::string a = "HEAGAWGHEETLDKLLKDTDVLKADWGHEE";
  const std::string b = "HEAGAWGHEDTLDKLKDTDVLKADWGHEE";

  Client::UploadOptions options;
  options.matrix = WireMatrix::kMdm78;
  options.placement = 42;  // co-locate the pair
  options.chunk_residues = 8;
  options.token = 1001;
  options.name = "a";
  const Response up_a = client.upload_sequence(a, options);
  const auto* ok_a = std::get_if<service::SeqOkResponse>(&up_a);
  ASSERT_NE(ok_a, nullptr);
  EXPECT_EQ(ok_a->residues, a.size());
  ASSERT_GE(ok_a->ref_id, 1u);

  options.token = 1002;
  options.name = "b";
  const Response up_b = client.upload_sequence(b, options);
  const auto* ok_b = std::get_if<service::SeqOkResponse>(&up_b);
  ASSERT_NE(ok_b, nullptr);
  ASSERT_GE(ok_b->ref_id, 1u);
  EXPECT_NE(ok_a->ref_id, ok_b->ref_id);  // router-scope ids are distinct

  service::AlignRefRequest by_handle;
  by_handle.ref_a = ok_a->ref_id;
  by_handle.ref_b = ok_b->ref_id;
  by_handle.matrix = WireMatrix::kMdm78;
  by_handle.gap_extend = -10;
  const Response streamed = client.call(by_handle);
  const auto* part = std::get_if<service::AlignPartResponse>(&streamed);
  ASSERT_NE(part, nullptr);
  EXPECT_TRUE(part->last);

  AlignRequest buffered;
  buffered.matrix = WireMatrix::kMdm78;
  buffered.gap_extend = -10;
  buffered.a = a;
  buffered.b = b;
  const Response direct = client.call(std::move(buffered));
  const auto* full = std::get_if<AlignResponse>(&direct);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(part->score, full->score);
  EXPECT_EQ(part->cigar_part, full->cigar);
}

TEST(Router, ChunkWithoutABeginIsRejectedAtTheRouter) {
  Fleet fleet(2);
  Client client = fleet.connect();
  service::SeqChunkRequest chunk;
  chunk.upload_token = 999999;  // no SEQ_BEGIN installed a route
  chunk.data = "ACGT";
  const Response response = client.call(chunk);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
}

TEST(Router, AlignRefForUnknownHandlesIsAnsweredLocally) {
  Fleet fleet(2);
  Client client = fleet.connect();
  service::AlignRefRequest request;
  request.ref_a = 31337;
  request.matrix = WireMatrix::kMdm78;
  request.b = "HEAGAWGHEE";
  const Response response = client.call(request);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
}

TEST(Router, StatsIsAnsweredLocallyWithRouterMetrics) {
  Fleet fleet(2);
  Client client = fleet.connect();
  (void)client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  const Response response = client.call(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&response);
  ASSERT_NE(stats, nullptr);
  double requests = -1.0, healthy = -1.0, uptime = -1.0;
  for (const auto& [name, value] : stats->entries) {
    if (name == "router.requests") requests = value;
    if (name == "router.backends_healthy") healthy = value;
    if (name == "uptime_ms") uptime = value;
  }
  EXPECT_GE(requests, 1.0);
  EXPECT_EQ(healthy, 2.0);
  EXPECT_GE(uptime, 0.0);
}

TEST(Router, StartRequiresAReachableBackend) {
  AlignmentServer parked;
  parked.start();
  const std::uint16_t dead = parked.port();
  parked.stop();
  RouterConfig config;
  config.backends = {{"127.0.0.1", dead}};
  Router router(config);
  EXPECT_THROW(router.start(), std::runtime_error);
}

TEST(Router, StopIsIdempotentAndStopsServing) {
  Fleet fleet(1);
  {
    Client client = fleet.connect();
    const Response response =
        client.call(protein_request("TLDKLLKD", "TDVLKAD"));
    ASSERT_TRUE(std::holds_alternative<AlignResponse>(response));
  }
  fleet.router->stop();
  EXPECT_FALSE(fleet.router->running());
  fleet.router->stop();  // second stop is a no-op
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", fleet.router->port()),
               service::TransportError);
}

TEST(Router, ReadmittedBackendIsResyncedAndStaleHandlesPruned) {
  // A backend that dies and comes back EMPTY (restarted without its
  // store) must not keep serving from the router's stale placement
  // table: on readmission the router asks REF_LIST and prunes handles
  // the backend no longer owns, so the client gets REF_NOT_FOUND from
  // the router instead of an undefined answer.
  RouterConfig config;
  config.health_interval_ms = 50;
  Fleet fleet(1, config);
  Client client = fleet.connect();

  Client::UploadOptions options;
  options.matrix = WireMatrix::kMdm78;
  options.token = 4001;
  const Response uploaded =
      client.upload_sequence("HEAGAWGHEETLDKLLKD", options);
  const auto* ok = std::get_if<service::SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);
  const std::uint64_t stale_handle = ok->ref_id;

  const std::uint64_t resyncs_before = counter("router.backend.resyncs");
  const std::uint64_t pruned_before = counter("router.refs_pruned");

  // Restart the backend on the same port with none of its state.
  const std::uint16_t port = fleet.backends[0]->port();
  ServiceConfig blank;
  blank.workers = 2;
  blank.port = port;
  fleet.backends[0]->stop();
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (obs::metrics().gauge("router.backends_healthy").value() == 0.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  fleet.backends[0] = std::make_unique<AlignmentServer>(blank);
  fleet.backends[0]->start();

  bool resynced = false;
  for (int attempt = 0; attempt < 200 && !resynced; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    resynced = counter("router.backend.resyncs") > resyncs_before;
  }
  ASSERT_TRUE(resynced) << "readmission never triggered a REF_LIST re-sync";
  EXPECT_GT(counter("router.refs_pruned"), pruned_before);

  service::AlignRefRequest request;
  request.ref_a = stale_handle;
  request.matrix = WireMatrix::kMdm78;
  request.b = "HEAGAWGHEE";
  const Response response = client.call(request);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
}

TEST(Router, CompletedUploadEvictsItsPlacementRoute) {
  // The placement map must not remember finished uploads: a sealed
  // session's route is evicted on the SEQ_END ack, so the gauge returns
  // to zero once the upload completes.
  Fleet fleet(2);
  Client client = fleet.connect();

  Client::UploadOptions options;
  options.matrix = WireMatrix::kMdm78;
  options.token = 2001;
  options.chunk_residues = 8;
  const Response uploaded =
      client.upload_sequence("HEAGAWGHEETLDKLLKD", options);
  ASSERT_TRUE(std::holds_alternative<service::SeqOkResponse>(uploaded));
  EXPECT_EQ(obs::metrics().gauge("router.upload_placements").value(), 0.0);
}

TEST(Router, AbandonedUploadRouteIsSweptAfterTheTtl) {
  // A client that opens a session and vanishes must not pin a map entry
  // forever: the TTL sweep evicts the stale route, counts it, and a late
  // chunk for the dead token gets the no-route refusal.
  RouterConfig config;
  config.upload_route_ttl_ms = 100;
  Fleet fleet(2, config);
  Client client = fleet.connect();

  const std::uint64_t expired_before = counter("router.upload_routes_expired");
  service::SeqBeginRequest begin;
  begin.upload_token = 3001;
  begin.matrix = WireMatrix::kMdm78;
  const Response opened = client.call(begin);
  ASSERT_TRUE(std::holds_alternative<service::SeqOkResponse>(opened));
  EXPECT_EQ(obs::metrics().gauge("router.upload_placements").value(), 1.0);

  // ...client walks away. Poll: the monitor sweep runs every ttl/4 ms.
  bool swept = false;
  for (int attempt = 0; attempt < 100 && !swept; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    swept = obs::metrics().gauge("router.upload_placements").value() == 0.0;
  }
  EXPECT_TRUE(swept) << "abandoned route was never evicted";
  EXPECT_GT(counter("router.upload_routes_expired"), expired_before);

  service::SeqChunkRequest chunk;
  chunk.upload_token = 3001;
  chunk.data = "HEAG";
  const Response late = client.call(chunk);
  const auto* error = std::get_if<ErrorResponse>(&late);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
}

}  // namespace
}  // namespace router
}  // namespace flsa
