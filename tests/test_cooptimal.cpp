// Tests for the 3-bit direction-set encoding and co-optimal path
// counting/enumeration (paper Section 2.1).
#include <gtest/gtest.h>

#include <set>

#include "dp/cooptimal.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(DirectionSetMatrix, PacksThreeBitsPerCell) {
  DirectionSetMatrix m(3, 5);
  m.set(0, 0, true, false, true);
  m.set(0, 1, false, true, false);
  m.set(2, 4, true, true, true);
  EXPECT_TRUE(m.diag(0, 0));
  EXPECT_FALSE(m.up(0, 0));
  EXPECT_TRUE(m.left(0, 0));
  EXPECT_TRUE(m.up(0, 1));
  EXPECT_FALSE(m.diag(0, 1));
  EXPECT_TRUE(m.diag(2, 4) && m.up(2, 4) && m.left(2, 4));
  // Neighbours unaffected.
  EXPECT_FALSE(m.diag(1, 0) || m.up(1, 0) || m.left(1, 0));
}

TEST(CoOptimal, PaperExampleHasASingleOptimalPath) {
  // The paper (Section 2.1): "in our example, there is a single optimal
  // path and it is denoted by numerical subscripts" — under the MDM78
  // scheme the score-82 optimum is unique, and it is the V-L-pairing
  // alignment of the introduction. (The introduction's "2 different ways
  // of obtaining 5 identically aligned letters" counts identical-letter
  // maximizers, a different objective.)
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const CoOptimalAnalysis analysis = count_optimal_paths(a, b, scheme);
  EXPECT_EQ(analysis.score, 82);
  EXPECT_EQ(analysis.path_count, 1u);

  const auto alignments = enumerate_optimal_alignments(a, b, scheme, 10);
  ASSERT_EQ(alignments.size(), 1u);
  EXPECT_EQ(alignments[0].score, 82);
  EXPECT_EQ(alignments[0].gapped_a, "TLDKLLK-D");
  EXPECT_EQ(alignments[0].gapped_b, "T-D-VLKAD");
}

TEST(CoOptimal, FirstEnumeratedEqualsSinglePathTraceback) {
  Xoshiro256 rng(251);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(30), rng);
    const Sequence b =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(30), rng);
    const auto alignments = enumerate_optimal_alignments(a, b, scheme, 1);
    ASSERT_EQ(alignments.size(), 1u);
    const Alignment fm = full_matrix_align(a, b, scheme);
    EXPECT_EQ(alignments[0].gapped_a, fm.gapped_a);
    EXPECT_EQ(alignments[0].gapped_b, fm.gapped_b);
  }
}

TEST(CoOptimal, CountMatchesEnumerationOnSmallCases) {
  Xoshiro256 rng(252);
  const SubstitutionMatrix m = scoring::dna(2, -1);
  const ScoringScheme scheme(m, -1);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), rng.bounded(8), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), rng.bounded(8), rng);
    const CoOptimalAnalysis analysis = count_optimal_paths(a, b, scheme);
    const auto alignments =
        enumerate_optimal_alignments(a, b, scheme, 100000);
    EXPECT_EQ(analysis.path_count, alignments.size())
        << a.to_string() << "/" << b.to_string();
    // All enumerated paths are distinct and optimal.
    std::set<std::string> unique;
    for (const Alignment& aln : alignments) {
      EXPECT_EQ(aln.score, analysis.score);
      unique.insert(aln.gapped_a + "/" + aln.gapped_b);
    }
    EXPECT_EQ(unique.size(), alignments.size());
  }
}

TEST(CoOptimal, UniquePathForStrongDiagonalSignal) {
  // Identical sequences with strong match reward: exactly one optimum.
  Xoshiro256 rng(253);
  const Sequence s = random_sequence(Alphabet::protein(), 50, rng);
  const CoOptimalAnalysis analysis =
      count_optimal_paths(s, s, ScoringScheme::paper_default());
  EXPECT_EQ(analysis.path_count, 1u);
}

TEST(CoOptimal, SaturatesOnDegenerateScoring) {
  // All-zero scoring with free gaps: every monotone path is optimal;
  // C(80, 40) >> 2^64 saturates the counter.
  const SubstitutionMatrix m = scoring::identity(Alphabet::dna(), 0, 0);
  const ScoringScheme scheme(m, 0);
  Xoshiro256 rng(254);
  const Sequence a = random_sequence(Alphabet::dna(), 40, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 40, rng);
  const CoOptimalAnalysis analysis = count_optimal_paths(a, b, scheme);
  EXPECT_TRUE(analysis.saturated());
}

TEST(CoOptimal, CountsLatticePathsExactly) {
  // Same degenerate scoring, small sizes: the count is the binomial
  // C(m+n, m) since every monotone path (including diagonals...) — with
  // all three moves allowed the count is the Delannoy number D(m, n).
  const SubstitutionMatrix m = scoring::identity(Alphabet::dna(), 0, 0);
  const ScoringScheme scheme(m, 0);
  const Sequence a(Alphabet::dna(), "AC");
  const Sequence b(Alphabet::dna(), "GT");
  // Delannoy D(2,2) = 13.
  EXPECT_EQ(count_optimal_paths(a, b, scheme).path_count, 13u);
  const Sequence one(Alphabet::dna(), "A");
  // D(1,1) = 3: diag, up+left, left+up.
  EXPECT_EQ(count_optimal_paths(one, one, scheme).path_count, 3u);
}

TEST(CoOptimal, LimitTruncatesEnumeration) {
  const SubstitutionMatrix m = scoring::identity(Alphabet::dna(), 0, 0);
  const ScoringScheme scheme(m, 0);
  const Sequence a(Alphabet::dna(), "ACGT");
  const Sequence b(Alphabet::dna(), "ACGT");
  const auto alignments = enumerate_optimal_alignments(a, b, scheme, 5);
  EXPECT_EQ(alignments.size(), 5u);
  EXPECT_TRUE(enumerate_optimal_alignments(a, b, scheme, 0).empty());
}

TEST(CoOptimal, EmptyInputs) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  EXPECT_EQ(count_optimal_paths(empty, empty, scheme).path_count, 1u);
  EXPECT_EQ(count_optimal_paths(acg, empty, scheme).path_count, 1u);
  const auto alignments =
      enumerate_optimal_alignments(empty, acg, scheme, 10);
  ASSERT_EQ(alignments.size(), 1u);
  EXPECT_EQ(alignments[0].gapped_a, "---");
}

}  // namespace
}  // namespace flsa
