// Memory regression tests for the search pipeline's gapped stage: the
// linear-space local aligner must not allocate the O(|query| * window)
// full Smith-Waterman matrix. A byte-counting global allocator (the
// test_arena.cpp trick, counting sizes instead of calls) measures the
// real heap traffic of both aligners and of seed_and_extend end to end —
// reverting stage 3 to local_align_full_matrix fails these by an order
// of magnitude.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/local_align.hpp"
#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "search/seed_extend.hpp"
#include "sequence/generate.hpp"

namespace {

std::atomic<std::uint64_t> g_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size) {
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

std::uint64_t bytes() { return g_bytes.load(std::memory_order_relaxed); }

template <typename Fn>
std::uint64_t bytes_allocated_by(Fn&& fn) {
  const std::uint64_t before = bytes();
  fn();
  return bytes() - before;
}

TEST(SearchMemory, LinearSpaceAlignerAllocatesFarLessThanTheFullMatrix) {
  Xoshiro256 rng(281);
  const Sequence gene = random_sequence(Alphabet::dna(), 400, rng);
  const Sequence window(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 1800, rng).to_string() +
          gene.to_string() +
          random_sequence(Alphabet::dna(), 1800, rng).to_string());

  // The same linearly-bounded base case stage 3 of seed_and_extend uses:
  // FastLSA recursion memory tracks the perimeter, not the cell product.
  FastLsaOptions linear_options;
  linear_options.base_case_cells =
      8 * (gene.size() + window.size());

  Score linear_score = 0, full_score = 0;
  const std::uint64_t linear_bytes = bytes_allocated_by([&] {
    linear_score = local_align(gene, window, scheme(), linear_options).score;
  });
  const std::uint64_t full_bytes = bytes_allocated_by([&] {
    full_score = local_align_full_matrix(gene, window, scheme()).score;
  });
  EXPECT_EQ(linear_score, full_score);
  EXPECT_EQ(linear_score, 400 * 5);
  // The full matrix holds |query| * |window| cells; linear space keeps
  // O(|query| + |window|) rows plus the FastLSA grid. An order of
  // magnitude is a loose bound — reverting stage 3 trips it immediately.
  EXPECT_LT(linear_bytes * 10, full_bytes)
      << "linear " << linear_bytes << " vs full " << full_bytes;
}

TEST(SearchMemory, LinearSpaceScalesLinearlyFullMatrixQuadratically) {
  // Fixed query, doubling windows: the full matrix's heap traffic tracks
  // the |query| * window product (~2x per doubling) while the linear-
  // space aligner tracks the perimeter (well under 2x of the product
  // trend; comfortably under 3x across the 4x span).
  Xoshiro256 rng(282);
  const Sequence gene = random_sequence(Alphabet::dna(), 300, rng);
  auto planted_window = [&](std::size_t flank) {
    return Sequence(
        Alphabet::dna(),
        random_sequence(Alphabet::dna(), flank, rng).to_string() +
            gene.to_string() +
            random_sequence(Alphabet::dna(), flank, rng).to_string());
  };
  const Sequence small = planted_window(350);   // ~1000 residues
  const Sequence large = planted_window(1850);  // ~4000 residues

  auto linear_options = [&](const Sequence& window) {
    FastLsaOptions options;
    options.base_case_cells = 8 * (gene.size() + window.size());
    return options;
  };
  const std::uint64_t linear_small = bytes_allocated_by(
      [&] { local_align(gene, small, scheme(), linear_options(small)); });
  const std::uint64_t linear_large = bytes_allocated_by(
      [&] { local_align(gene, large, scheme(), linear_options(large)); });
  const std::uint64_t full_small = bytes_allocated_by(
      [&] { local_align_full_matrix(gene, small, scheme()); });
  const std::uint64_t full_large = bytes_allocated_by(
      [&] { local_align_full_matrix(gene, large, scheme()); });

  EXPECT_GE(full_large, full_small * 7 / 2)  // ~4x: the matrix product
      << full_small << " -> " << full_large;
  EXPECT_LT(linear_large, linear_small * 3)  // linear in the window
      << linear_small << " -> " << linear_large;
}

TEST(SearchMemory, SeedAndExtendHeapTrafficStaysFarBelowTheMatrixProduct) {
  // End to end: stage 3 aligns the query against a padded window of
  // roughly |query| + 2 * window_pad subject residues per candidate. With
  // the linear-space aligner the whole search allocates a small multiple
  // of the sequences involved — nowhere near one full DP matrix.
  Xoshiro256 rng(283);
  const Sequence gene = random_sequence(Alphabet::dna(), 1000, rng);
  MutationModel model;
  model.substitution_rate = 0.03;
  const Sequence mutated = mutate(gene, model, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 4000, rng).to_string() +
          mutated.to_string() +
          random_sequence(Alphabet::dna(), 3000, rng).to_string());
  const search::KmerIndex index(subject, 12);

  search::SearchParams params;  // long seeds + a high floor: only the
  params.k = 12;                // planted region yields candidates
  params.min_ungapped_score = 80;
  params.max_hits = 4;
  std::size_t hit_count = 0;
  const std::uint64_t search_bytes = bytes_allocated_by([&] {
    hit_count =
        search::seed_and_extend(gene, index, scheme(), params).size();
  });
  ASSERT_GT(hit_count, 0u);

  const std::size_t window = gene.size() + 2 * params.window_pad;
  // One full-matrix window is |query| * window cells at >= 4 bytes of
  // score each. The *entire* pipeline — every candidate window — must
  // stay under a single such matrix; the reverted full-matrix stage 3
  // blows the bound on its very first candidate.
  const std::uint64_t one_matrix =
      static_cast<std::uint64_t>(gene.size()) * window * 4;
  EXPECT_LT(search_bytes, one_matrix)
      << "search allocated " << search_bytes << " bytes; one full matrix "
      << "would be at least " << one_matrix;
}

}  // namespace
}  // namespace flsa
