// Tests for the tile-schedule computation and its ASCII rendering.
#include <gtest/gtest.h>

#include "simexec/gantt.hpp"
#include "simexec/virtual_time.hpp"

namespace flsa {
namespace {

TileGridRecord uniform_grid(std::size_t rows, std::size_t cols,
                            std::uint64_t cost) {
  TileGridRecord grid;
  grid.rows = rows;
  grid.cols = cols;
  grid.costs.assign(rows * cols, cost);
  return grid;
}

TEST(Gantt, ScheduleCoversEveryTileExactlyOnce) {
  const TileGridRecord grid = uniform_grid(5, 6, 10);
  const GridSchedule schedule = schedule_grid(grid, 3);
  EXPECT_EQ(schedule.tiles.size(), 30u);
  std::vector<bool> seen(30, false);
  for (const ScheduledTile& tile : schedule.tiles) {
    const std::size_t idx = tile.ti * 6 + tile.tj;
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
    EXPECT_EQ(tile.end - tile.start, 10u);
    EXPECT_LT(tile.processor, 3u);
  }
}

TEST(Gantt, ScheduleRespectsDependencies) {
  const TileGridRecord grid = uniform_grid(6, 6, 7);
  const GridSchedule schedule = schedule_grid(grid, 4);
  std::vector<std::uint64_t> end_of(36, 0);
  for (const ScheduledTile& tile : schedule.tiles) {
    end_of[tile.ti * 6 + tile.tj] = tile.end;
  }
  for (const ScheduledTile& tile : schedule.tiles) {
    if (tile.ti > 0) {
      EXPECT_GE(tile.start, end_of[(tile.ti - 1) * 6 + tile.tj]);
    }
    if (tile.tj > 0) {
      EXPECT_GE(tile.start, end_of[tile.ti * 6 + tile.tj - 1]);
    }
  }
}

TEST(Gantt, NoProcessorOverlap) {
  const TileGridRecord grid = uniform_grid(8, 8, 5);
  const GridSchedule schedule = schedule_grid(grid, 3);
  for (const ScheduledTile& x : schedule.tiles) {
    for (const ScheduledTile& y : schedule.tiles) {
      if (&x == &y || x.processor != y.processor) continue;
      EXPECT_TRUE(x.end <= y.start || y.end <= x.start)
          << "overlap on P" << x.processor;
    }
  }
}

TEST(Gantt, MakespanMatchesVirtualTime) {
  const TileGridRecord grid = uniform_grid(9, 9, 11);
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(schedule_grid(grid, p).makespan,
              grid_makespan(grid, p, SchedulerKind::kDependencyCounter))
        << "P=" << p;
  }
}

TEST(Gantt, SkippedTilesAbsent) {
  TileGridRecord grid = uniform_grid(4, 4, 3);
  grid.costs[15] = TileGridRecord::kSkipped;  // bottom-right
  const GridSchedule schedule = schedule_grid(grid, 2);
  EXPECT_EQ(schedule.tiles.size(), 15u);
}

TEST(Gantt, RenderShowsLanesAndIdleRamp) {
  const TileGridRecord grid = uniform_grid(6, 6, 100);
  const GridSchedule schedule = schedule_grid(grid, 4);
  const std::string text = render_gantt(schedule, 48);
  EXPECT_NE(text.find("P0 |"), std::string::npos);
  EXPECT_NE(text.find("P3 |"), std::string::npos);
  // The wavefront ramp leaves idle ('.') time on the later processors.
  EXPECT_NE(text.find('.'), std::string::npos);
  EXPECT_NE(text.find("t="), std::string::npos);
}

TEST(Gantt, EmptyScheduleRenders) {
  GridSchedule schedule;
  EXPECT_EQ(render_gantt(schedule), "(empty schedule)\n");
}

TEST(Gantt, OverheadStretchesTheSchedule) {
  const TileGridRecord grid = uniform_grid(5, 5, 10);
  EXPECT_GT(schedule_grid(grid, 2, 100).makespan,
            schedule_grid(grid, 2, 0).makespan);
}

}  // namespace
}  // namespace flsa
