// Tests for the query-profile kernel.
#include <gtest/gtest.h>

#include "dp/kernel.hpp"
#include "dp/query_profile.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(QueryProfile, RowsMatchMatrixLookups) {
  Xoshiro256 rng(241);
  const Sequence b = random_sequence(Alphabet::protein(), 40, rng);
  const QueryProfile profile(b.residues(), scoring::mdm78());
  EXPECT_EQ(profile.length(), 40u);
  for (Residue x = 0; x < 20; ++x) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      EXPECT_EQ(profile.row(x)[j], scoring::mdm78().at(x, b[j]));
    }
  }
}

TEST(QueryProfile, LastRowBitIdenticalToPlainKernel) {
  Xoshiro256 rng(242);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = rng.bounded(60);
    const std::size_t n = rng.bounded(60);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const QueryProfile profile(b.residues(), scheme.matrix());
    EXPECT_EQ(last_row_profiled(a.residues(), profile, scheme),
              last_row_linear(a.residues(), b.residues(), scheme))
        << m << "x" << n;
  }
}

TEST(QueryProfile, GlobalScoreAgrees) {
  Xoshiro256 rng(243);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 300, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  EXPECT_EQ(global_score_profiled(pair.a.residues(), pair.b.residues(),
                                  scheme),
            global_score_linear(pair.a.residues(), pair.b.residues(),
                                scheme));
}

TEST(QueryProfile, ProfileReusableAcrossQueries) {
  Xoshiro256 rng(244);
  const Sequence b = random_sequence(Alphabet::dna(), 50, rng);
  const SubstitutionMatrix m = scoring::dna(3, -2);
  const ScoringScheme scheme(m, -4);
  const QueryProfile profile(b.residues(), m);
  for (int trial = 0; trial < 5; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    EXPECT_EQ(last_row_profiled(a.residues(), profile, scheme).back(),
              global_score_linear(a.residues(), b.residues(), scheme));
  }
}

TEST(QueryProfile, CountsCellsAndRejectsAffine) {
  Xoshiro256 rng(245);
  const Sequence a = random_sequence(Alphabet::dna(), 7, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 9, rng);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -2);
  DpCounters counters;
  global_score_profiled(a.residues(), b.residues(), scheme, &counters);
  EXPECT_EQ(counters.cells_scored, 63u);
  const ScoringScheme affine(m, -5, -1);
  const QueryProfile profile(b.residues(), m);
  EXPECT_THROW(last_row_profiled(a.residues(), profile, affine),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
