// CLI <-> dispatch-table conformance: flsa_align's --list-kernels, --help
// and error output must enumerate exactly the kernels in
// kernel_registry(), so a tier added to (or renamed in) the table can
// never drift from the CLI's documentation. The flsa_align binary path
// arrives as argv[1] (wired in tests/CMakeLists.txt via
// $<TARGET_FILE:flsa_align>).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dp/kernel.hpp"

namespace flsa {
namespace {

std::string g_flsa_align_bin;  // set by main() from argv[1]

/// Runs `cmd` and returns its stdout (merged with stderr).
std::string run_capture(const std::string& cmd) {
  std::string out;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return out;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    lines.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

/// Writes the paper's worked-example pair next to the test binary and
/// returns the path.
std::string paper_pair_fasta() {
  const std::string path = "cli_kernels_pair.fasta";
  std::ofstream out(path);
  out << ">a\nTLDKLLKD\n>b\nTDVLKAD\n";
  return path;
}

TEST(CliKernels, ListKernelsMatchesDispatchTable) {
  ASSERT_FALSE(g_flsa_align_bin.empty())
      << "pass the flsa_align binary path as argv[1]";
  const std::string out = run_capture(g_flsa_align_bin + " --list-kernels");

  // Expect exactly one "name : summary" line per registry row, in table
  // order.
  std::vector<std::string> rows;
  for (const std::string& line : split_lines(out)) {
    if (line.find(" : ") != std::string::npos) rows.push_back(line);
  }
  ASSERT_EQ(rows.size(), kernel_registry().size()) << out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelInfo& info = kernel_registry()[i];
    const std::string want =
        std::string(info.name) + " : " + info.summary;
    EXPECT_EQ(rows[i], want) << "row " << i;
  }
}

TEST(CliKernels, HelpNamesEveryRegisteredKernel) {
  ASSERT_FALSE(g_flsa_align_bin.empty());
  const std::string out = run_capture(g_flsa_align_bin + " --help");
  ASSERT_NE(out.find("--kernel"), std::string::npos) << out;
  // The --kernel help line is generated from the registry; every name
  // must appear, joined in table order.
  std::string joined;
  for (const KernelInfo& info : kernel_registry()) {
    if (!joined.empty()) joined += " | ";
    joined += info.name;
  }
  EXPECT_NE(out.find(joined), std::string::npos)
      << "--help does not carry the registry list '" << joined << "':\n"
      << out;
}

TEST(CliKernels, EveryRegisteredKernelIsAccepted) {
  ASSERT_FALSE(g_flsa_align_bin.empty());
  const std::string fasta = paper_pair_fasta();
  for (const KernelInfo& info : kernel_registry()) {
    const std::string out = run_capture(g_flsa_align_bin + " --kernel " +
                                        info.name + " " + fasta);
    // The paper's worked example scores 82 under the default scheme, on
    // every tier.
    EXPECT_NE(out.find("score"), std::string::npos)
        << "--kernel " << info.name << " failed:\n"
        << out;
    EXPECT_NE(out.find("82"), std::string::npos)
        << "--kernel " << info.name << " wrong score:\n"
        << out;
  }
}

TEST(CliKernels, UnknownKernelIsRejectedAndListsChoices) {
  ASSERT_FALSE(g_flsa_align_bin.empty());
  const std::string fasta = paper_pair_fasta();
  const std::string out =
      run_capture(g_flsa_align_bin + " --kernel int13 " + fasta);
  EXPECT_NE(out.find("unknown --kernel"), std::string::npos) << out;
  for (const KernelInfo& info : kernel_registry()) {
    EXPECT_NE(out.find(info.name), std::string::npos)
        << "error message does not list '" << info.name << "':\n"
        << out;
  }
}

}  // namespace
}  // namespace flsa

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) flsa::g_flsa_align_bin = argv[1];
  return RUN_ALL_TESTS();
}
