// Tests for the memory tracker / RAII charges.
#include <gtest/gtest.h>

#include "core/budget.hpp"

namespace flsa {
namespace {

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.allocate(100);
  t.allocate(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.release(100);
  EXPECT_EQ(t.current_bytes(), 50u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.allocate(60);
  EXPECT_EQ(t.peak_bytes(), 150u);  // 110 < 150
  t.allocate(100);
  EXPECT_EQ(t.peak_bytes(), 210u);
  EXPECT_EQ(t.allocation_count(), 4u);
}

TEST(MemoryTracker, OverReleaseThrows) {
  MemoryTracker t;
  t.allocate(10);
  EXPECT_THROW(t.release(11), std::invalid_argument);
}

TEST(MemoryCharge, RaiiReleasesOnScopeExit) {
  MemoryTracker t;
  {
    MemoryCharge charge(&t, 64);
    EXPECT_EQ(t.current_bytes(), 64u);
  }
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 64u);
}

TEST(MemoryCharge, NullTrackerIsNoop) {
  MemoryCharge charge(nullptr, 64);  // must not crash
  charge.resize(128);
}

TEST(MemoryCharge, ResizeAdjustsCharge) {
  MemoryTracker t;
  MemoryCharge charge(&t, 100);
  charge.resize(40);
  EXPECT_EQ(t.current_bytes(), 40u);
  EXPECT_EQ(t.peak_bytes(), 100u);
  charge.resize(70);
  EXPECT_EQ(t.current_bytes(), 70u);
}

TEST(MemoryCharge, MoveTransfersOwnership) {
  MemoryTracker t;
  MemoryCharge a(&t, 30);
  MemoryCharge b = std::move(a);
  EXPECT_EQ(t.current_bytes(), 30u);
  {
    MemoryCharge c(&t, 10);
    b = std::move(c);  // b's 30 released, c's 10 adopted
    EXPECT_EQ(t.current_bytes(), 10u);
  }
  EXPECT_EQ(t.current_bytes(), 10u);  // c was moved-from; no double release
}

}  // namespace
}  // namespace flsa
