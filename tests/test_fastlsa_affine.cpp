// Tests for affine-gap FastLSA: grid caches carry (D, Ix, Iy) triples and
// the traceback lane crosses block boundaries. Validated against the
// full-matrix Gotoh baseline.
#include <gtest/gtest.h>

#include "core/fastlsa.hpp"
#include "dp/gotoh.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

FastLsaOptions opts(unsigned k, std::size_t base_cells) {
  FastLsaOptions o;
  o.k = k;
  o.base_case_cells = base_cells;
  return o;
}

ScoringScheme affine_scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -8, -2);
}

TEST(FastLsaAffine, MatchesGotohOnRandomPairs) {
  Xoshiro256 rng(91);
  const ScoringScheme scheme = affine_scheme();
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 1 + rng.bounded(70);
    const std::size_t n = 1 + rng.bounded(70);
    const Sequence a = random_sequence(Alphabet::dna(), m, rng);
    const Sequence b = random_sequence(Alphabet::dna(), n, rng);
    const Score expected =
        global_score_affine(a.residues(), b.residues(), scheme);
    const Alignment aln = fastlsa_align_affine(a, b, scheme, opts(3, 64));
    EXPECT_EQ(aln.score, expected) << "m=" << m << " n=" << n;
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

TEST(FastLsaAffine, GapRunCrossingGridLines) {
  // A long gap spanning several grid blocks: the traceback must stay in
  // the Ix lane across block boundaries, paying gap-open exactly once.
  const SubstitutionMatrix m = scoring::dna(10, -10);
  const ScoringScheme scheme(m, -9, -1);
  const Sequence a(Alphabet::dna(), "ACGTGGGGGGGGGGGGGGGGGGGGGGGGACGT");
  const Sequence b(Alphabet::dna(), "ACGTACGT");
  const Score expected =
      global_score_affine(a.residues(), b.residues(), scheme);
  // k=2 and a tiny buffer force the 24-long gap across many blocks.
  const Alignment aln = fastlsa_align_affine(a, b, scheme, opts(2, 16));
  EXPECT_EQ(aln.score, expected);
  EXPECT_EQ(expected, 80 - 9 - 24);
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
}

TEST(FastLsaAffine, MatchesGotohPathExactly) {
  Xoshiro256 rng(92);
  const ScoringScheme scheme = affine_scheme();
  for (int trial = 0; trial < 10; ++trial) {
    MutationModel model;
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), 50 + rng.bounded(100), model, rng);
    const Alignment fm = full_matrix_align_affine(pair.a, pair.b, scheme);
    const Alignment fl =
        fastlsa_align_affine(pair.a, pair.b, scheme, opts(4, 100));
    EXPECT_EQ(fl.score, fm.score);
    EXPECT_EQ(fl.gapped_a, fm.gapped_a);
    EXPECT_EQ(fl.gapped_b, fm.gapped_b);
  }
}

TEST(FastLsaAffine, LinearSchemeAgreesWithLinearFastLsa) {
  Xoshiro256 rng(93);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 8; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(60), rng);
    const Sequence b =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(60), rng);
    EXPECT_EQ(fastlsa_align_affine(a, b, scheme, opts(3, 64)).score,
              fastlsa_align(a, b, scheme, opts(3, 64)).score);
  }
}

TEST(FastLsaAffine, EmptyInputs) {
  const ScoringScheme scheme = affine_scheme();
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  EXPECT_EQ(fastlsa_align_affine(empty, empty, scheme).score, 0);
  EXPECT_EQ(fastlsa_align_affine(acg, empty, scheme).score, -14);
  EXPECT_EQ(fastlsa_align_affine(empty, acg, scheme).score, -14);
}

// Parameterized (k, BM) sweep mirroring the linear suite.
struct AffineParam {
  unsigned k;
  std::size_t base_cells;
};

class FastLsaAffineKBm : public ::testing::TestWithParam<AffineParam> {};

TEST_P(FastLsaAffineKBm, MatchesGotohScore) {
  const AffineParam param = GetParam();
  Xoshiro256 rng(param.k * 104729 + param.base_cells);
  MutationModel model;
  model.substitution_rate = 0.2;
  model.insertion_rate = 0.05;
  model.deletion_rate = 0.05;
  model.extension_prob = 0.7;  // longer indels stress the gap lanes
  const ScoringScheme scheme = affine_scheme();
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t len = 30 + rng.bounded(120);
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), len, model, rng);
    const Score expected = global_score_affine(pair.a.residues(),
                                               pair.b.residues(), scheme);
    EXPECT_EQ(fastlsa_align_affine(pair.a, pair.b, scheme,
                                   opts(param.k, param.base_cells))
                  .score,
              expected)
        << "k=" << param.k << " bm=" << param.base_cells;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KBmGrid, FastLsaAffineKBm,
    ::testing::Values(AffineParam{2, 16}, AffineParam{2, 512},
                      AffineParam{3, 100}, AffineParam{4, 16},
                      AffineParam{5, 256}, AffineParam{8, 64},
                      AffineParam{16, 1024}),
    [](const ::testing::TestParamInfo<AffineParam>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_bm" +
             std::to_string(param_info.param.base_cells);
    });

}  // namespace
}  // namespace flsa
