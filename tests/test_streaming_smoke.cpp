// Genome-scale streaming smoke test: chunk-upload a multi-megabase
// mutated DNA pair into the packed store, align the two handles with a
// banded ALIGN_REF, and assert the process peak RSS stayed under a
// fixed bound derived from the banded matrix size — the end-to-end
// proof that the streaming path is O(m * band) in memory, not O(m * n).
//
// The pair length is STREAMING_SMOKE_BP residues (default 300k so the
// test stays quick locally); CI's streaming-smoke job sets 2200000 to
// exercise a true >2 Mbp pair, where the full-matrix alternative would
// need ~19 TB.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <variant>

#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace flsa {
namespace service {
namespace {

std::size_t pair_length() {
  const char* env = std::getenv("STREAMING_SMOKE_BP");
  if (env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 300'000;
}

std::size_t peak_rss_bytes() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KB on Linux
}

TEST(StreamingSmoke, MultiMegabasePairAlignsWithinABoundedFootprint) {
  const std::size_t n = pair_length();
  constexpr std::uint32_t kBand = 32;

  // Substitution-only mutant: equal lengths, so the optimal path stays
  // near the main diagonal (well inside the band) and the diagonal
  // score — computable in O(n) — is a hard lower bound on the optimum.
  Xoshiro256 rng(8008);
  MutationModel model;
  model.substitution_rate = 0.02;
  model.insertion_rate = 0;
  model.deletion_rate = 0;
  const SequencePair pair =
      homologous_pair(Alphabet::dna(), n, model, rng);
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  ASSERT_EQ(a.size(), b.size());
  std::int64_t diagonal_score = 0;
  for (std::size_t i = 0; i < n; ++i) {
    diagonal_score += a[i] == b[i] ? 5 : -4;  // scoring::dna() defaults
  }

  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.chunk_residues = std::size_t{1} << 19;  // many chunks per upload
  options.name = "smoke-a";
  const Response up_a = client.upload_sequence(a, options);
  const auto* ok_a = std::get_if<SeqOkResponse>(&up_a);
  ASSERT_NE(ok_a, nullptr) << "upload of A failed";
  EXPECT_EQ(ok_a->residues, n);
  options.name = "smoke-b";
  const Response up_b = client.upload_sequence(b, options);
  const auto* ok_b = std::get_if<SeqOkResponse>(&up_b);
  ASSERT_NE(ok_b, nullptr) << "upload of B failed";

  AlignRefRequest request;
  request.ref_a = ok_a->ref_id;
  request.ref_b = ok_b->ref_id;
  request.matrix = WireMatrix::kDna;
  request.gap_open = 0;  // banded mode is linear-gap only
  request.gap_extend = -4;
  request.band = kBand;
  const Response response = client.call(request);
  const auto* part = std::get_if<AlignPartResponse>(&response);
  ASSERT_NE(part, nullptr) << "ALIGN_REF failed";
  EXPECT_TRUE(part->last);

  // Score sanity: at least the diagonal, at most a perfect match.
  EXPECT_GE(part->score, diagonal_score);
  EXPECT_LE(part->score, static_cast<std::int64_t>(n) * 5);
  EXPECT_GT(part->cells, 0u);
  EXPECT_LE(part->cells, estimated_banded_cells(n, n, kBand));

  // The CIGAR must account for every residue of both sequences.
  std::size_t consumed_a = 0, consumed_b = 0, run = 0;
  for (char c : part->cigar_part) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      run = run * 10 + static_cast<std::size_t>(c - '0');
      continue;
    }
    if (c == 'M' || c == '=' || c == 'X') {
      consumed_a += run;
      consumed_b += run;
    } else if (c == 'D') {
      consumed_a += run;
    } else if (c == 'I') {
      consumed_b += run;
    } else {
      FAIL() << "unexpected CIGAR op '" << c << "'";
    }
    run = 0;
  }
  EXPECT_EQ(consumed_a, n);
  EXPECT_EQ(consumed_b, n);

  server.stop();

  // The banded matrix is (n+1) x (2w+1) Score cells — the dominant
  // allocation. Allow 2x for transient copies (path, CIGAR, packed
  // store pages, the client's own buffers) plus a fixed process
  // baseline; a quadratic regression blows through this by orders of
  // magnitude at any size this test runs at.
  const std::size_t matrix_bytes =
      (n + 1) * (2 * std::size_t{kBand} + 1) * sizeof(std::int32_t);
  const std::size_t bound = 2 * matrix_bytes + (std::size_t{512} << 20);
  const std::size_t peak = peak_rss_bytes();
  EXPECT_LT(peak, bound) << "peak RSS " << (peak >> 20) << " MiB exceeds "
                         << (bound >> 20) << " MiB for n = " << n;
}

}  // namespace
}  // namespace service
}  // namespace flsa
