// Tests for the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "parallel/thread_pool.hpp"

namespace flsa {
namespace {

TEST(ThreadPool, RunsEveryWorkerOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::set<unsigned> ids;
  pool.parallel_run([&](unsigned id) {
    calls.fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(id);
  });
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(ids, (std::set<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, SequentialGenerationsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  }
  EXPECT_EQ(calls.load(), 150);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int value = 0;
  pool.parallel_run([&](unsigned id) {
    EXPECT_EQ(id, 0u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_run([&](unsigned id) {
    if (id == 0) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> calls{0};
  pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, DestructionWithNoRuns) {
  ThreadPool pool(4);  // must join cleanly without any parallel_run
}

TEST(ThreadPool, NestedParallelRunFallsBackToSerial) {
  // A worker re-entering parallel_run (e.g. a parallel engine invoked
  // from inside a batch job) must not deadlock or abort: the nested call
  // runs every slot serially on the calling thread.
  ThreadPool pool(3);
  std::atomic<int> outer_calls{0};
  std::atomic<int> inner_calls{0};
  pool.parallel_run([&](unsigned) {
    outer_calls.fetch_add(1);
    pool.parallel_run([&](unsigned inner_id) {
      EXPECT_LT(inner_id, 3u);
      inner_calls.fetch_add(1);
    });
  });
  EXPECT_EQ(outer_calls.load(), 3);
  // Each of the 3 outer slots ran all 3 inner slots serially.
  EXPECT_EQ(inner_calls.load(), 9);
}

TEST(ThreadPool, NestedRunIntoDifferentPoolAlsoSerial) {
  // Workers of one pool are pool workers, full stop: they may not block
  // inside another pool's collective either (that pool's workers could
  // themselves be waiting on us — e.g. batch jobs driving a shared
  // engine pool), so the call degrades to serial as well.
  ThreadPool outer(2);
  ThreadPool inner(4);
  std::atomic<int> calls{0};
  outer.parallel_run([&](unsigned) {
    inner.parallel_run([&](unsigned id) {
      EXPECT_LT(id, 4u);
      calls.fetch_add(1);
    });
  });
  EXPECT_EQ(calls.load(), 2 * 4);
}

TEST(ThreadPool, NestedRunPropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> nested_throws{0};
  EXPECT_THROW(
      pool.parallel_run([&](unsigned) {
        try {
          pool.parallel_run([&](unsigned inner_id) {
            if (inner_id == 1) throw std::runtime_error("inner boom");
          });
        } catch (const std::runtime_error&) {
          nested_throws.fetch_add(1);
          throw;
        }
      }),
      std::runtime_error);
  // Every outer slot saw the nested exception; the pool stays usable.
  EXPECT_EQ(nested_throws.load(), 2);
  std::atomic<int> calls{0};
  pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, SerialFallbackRunsRemainingSlotsAfterThrow) {
  // The serial fallback mirrors the parallel contract: one slot throwing
  // does not stop the other slots from running.
  ThreadPool pool(3);
  std::atomic<int> inner_calls{0};
  pool.parallel_run([&](unsigned outer_id) {
    if (outer_id != 0) return;  // only one slot exercises the nested call
    EXPECT_THROW(pool.parallel_run([&](unsigned inner_id) {
      inner_calls.fetch_add(1);
      if (inner_id == 0) throw std::runtime_error("slot 0");
    }),
                 std::runtime_error);
  });
  EXPECT_EQ(inner_calls.load(), 3);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
  ThreadPool pool(default_thread_count());  // usable as a pool size
  std::atomic<unsigned> calls{0};
  pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), default_thread_count());
}

TEST(ThreadPool, SharedCounterVisibility) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_run([&](unsigned id) {
    for (int i = 0; i < 10000; ++i) sum.fetch_add(id + 1);
  });
  EXPECT_EQ(sum.load(), 10000u * (1 + 2 + 3 + 4));
}

}  // namespace
}  // namespace flsa
