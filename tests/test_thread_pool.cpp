// Tests for the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "parallel/thread_pool.hpp"

namespace flsa {
namespace {

TEST(ThreadPool, RunsEveryWorkerOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::set<unsigned> ids;
  pool.parallel_run([&](unsigned id) {
    calls.fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(id);
  });
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(ids, (std::set<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, SequentialGenerationsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  }
  EXPECT_EQ(calls.load(), 150);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int value = 0;
  pool.parallel_run([&](unsigned id) {
    EXPECT_EQ(id, 0u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_run([&](unsigned id) {
    if (id == 0) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> calls{0};
  pool.parallel_run([&](unsigned) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, DestructionWithNoRuns) {
  ThreadPool pool(4);  // must join cleanly without any parallel_run
}

TEST(ThreadPool, SharedCounterVisibility) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_run([&](unsigned id) {
    for (int i = 0; i < 10000; ++i) sum.fetch_add(id + 1);
  });
  EXPECT_EQ(sum.load(), 10000u * (1 + 2 + 3 + 4));
}

}  // namespace
}  // namespace flsa
