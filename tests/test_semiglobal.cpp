// Tests for fitting and overlap alignment: full-matrix reference vs
// brute-force window enumeration, and linear-space (FastLSA) vs
// full-matrix.
#include <gtest/gtest.h>

#include "core/semiglobal.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/semiglobal.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

/// Brute force: fitting score = max over all windows b[js..je) of the
/// global alignment score of a x window.
Score brute_force_fitting(const Sequence& a, const Sequence& b) {
  Score best = kNegInf;
  for (std::size_t js = 0; js <= b.size(); ++js) {
    for (std::size_t je = js; je <= b.size(); ++je) {
      const Sequence window = b.subsequence(js, je - js);
      best = std::max(best, full_matrix_score(a, window, scheme()));
    }
  }
  return best;
}

/// Brute force: overlap score = max over suffix of a x prefix of b.
Score brute_force_overlap(const Sequence& a, const Sequence& b) {
  Score best = kNegInf;
  for (std::size_t is = 0; is <= a.size(); ++is) {
    const Sequence suffix = a.subsequence(is, a.size() - is);
    for (std::size_t je = 0; je <= b.size(); ++je) {
      const Sequence prefix = b.subsequence(0, je);
      best = std::max(best, full_matrix_score(suffix, prefix, scheme()));
    }
  }
  return best;
}

TEST(Fitting, MatchesBruteForceOnSmallPairs) {
  Xoshiro256 rng(171);
  for (int trial = 0; trial < 12; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(8), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(12), rng);
    const Alignment aln = fitting_align_full_matrix(a, b, scheme());
    EXPECT_EQ(aln.score, brute_force_fitting(a, b))
        << a.to_string() << " / " << b.to_string();
  }
}

TEST(Overlap, MatchesBruteForceOnSmallPairs) {
  Xoshiro256 rng(172);
  for (int trial = 0; trial < 12; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(10), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(10), rng);
    const Alignment aln = overlap_align_full_matrix(a, b, scheme());
    EXPECT_EQ(aln.score, brute_force_overlap(a, b))
        << a.to_string() << " / " << b.to_string();
  }
}

TEST(Fitting, FindsPlantedQueryExactly) {
  Xoshiro256 rng(173);
  const Sequence query = random_sequence(Alphabet::dna(), 30, rng);
  const Sequence left = random_sequence(Alphabet::dna(), 50, rng);
  const Sequence right = random_sequence(Alphabet::dna(), 40, rng);
  const Sequence host(Alphabet::dna(), left.to_string() +
                                           query.to_string() +
                                           right.to_string());
  const Alignment aln = fitting_align_full_matrix(query, host, scheme());
  EXPECT_EQ(aln.score, 30 * 5);
  EXPECT_EQ(aln.b_begin, 50u);
  EXPECT_EQ(aln.b_end, 80u);
  EXPECT_EQ(aln.a_begin, 0u);
  EXPECT_EQ(aln.a_end, 30u);
}

TEST(Overlap, FindsPlantedDovetail) {
  Xoshiro256 rng(174);
  const Sequence shared = random_sequence(Alphabet::dna(), 25, rng);
  const Sequence a(Alphabet::dna(),
                   random_sequence(Alphabet::dna(), 40, rng).to_string() +
                       shared.to_string());
  const Sequence b(Alphabet::dna(),
                   shared.to_string() +
                       random_sequence(Alphabet::dna(), 35, rng).to_string());
  const Alignment aln = overlap_align_full_matrix(a, b, scheme());
  EXPECT_GE(aln.score, 25 * 5 - 8);  // the planted overlap, maybe extended
  EXPECT_EQ(aln.a_end, a.size());
  EXPECT_EQ(aln.b_begin, 0u);
}

TEST(Fitting, LinearSpaceMatchesFullMatrix) {
  Xoshiro256 rng(175);
  for (int trial = 0; trial < 15; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(80), rng);
    const Alignment fm = fitting_align_full_matrix(a, b, scheme());
    FastLsaOptions options;
    options.k = 3;
    options.base_case_cells = 64;
    const Alignment ls = fitting_align(a, b, scheme(), options);
    EXPECT_EQ(ls.score, fm.score);
    // The matched windows agree (deterministic tie-breaking end to end).
    EXPECT_EQ(ls.b_end, fm.b_end);
  }
}

TEST(Overlap, LinearSpaceMatchesFullMatrix) {
  Xoshiro256 rng(176);
  for (int trial = 0; trial < 15; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(60), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(60), rng);
    const Alignment fm = overlap_align_full_matrix(a, b, scheme());
    const Alignment ls = overlap_align(a, b, scheme());
    EXPECT_EQ(ls.score, fm.score);
  }
}

TEST(Fitting, GappedRowsConsumeExactRegions) {
  Xoshiro256 rng(177);
  MutationModel model;
  const Sequence query = random_sequence(Alphabet::dna(), 60, rng);
  const Sequence mutated = mutate(query, model, rng);
  const Sequence host(Alphabet::dna(),
                      random_sequence(Alphabet::dna(), 100, rng).to_string() +
                          mutated.to_string() +
                          random_sequence(Alphabet::dna(), 90, rng)
                              .to_string());
  const Alignment aln = fitting_align(query, host, scheme());
  std::size_t a_res = 0, b_res = 0;
  for (char c : aln.gapped_a) a_res += (c != '-');
  for (char c : aln.gapped_b) b_res += (c != '-');
  EXPECT_EQ(a_res, query.size());
  EXPECT_EQ(b_res, aln.b_end - aln.b_begin);
  // The window sits near the planted location.
  EXPECT_GE(aln.b_begin + 10, 100u);
  EXPECT_LE(aln.b_end, 100u + mutated.size() + 10);
}

TEST(Semiglobal, ScoresAtLeastGlobal) {
  // Freeing end gaps can only help.
  Xoshiro256 rng(178);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    const Score global = full_matrix_score(a, b, scheme());
    EXPECT_GE(fitting_align_full_matrix(a, b, scheme()).score, global);
    EXPECT_GE(overlap_align_full_matrix(a, b, scheme()).score, global);
  }
}

TEST(Semiglobal, EmptyInputs) {
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  // Empty query fits trivially anywhere with score 0.
  EXPECT_EQ(fitting_align_full_matrix(empty, acg, scheme()).score, 0);
  EXPECT_EQ(fitting_align(empty, acg, scheme()).score, 0);
  // Empty overlap is always available.
  EXPECT_EQ(overlap_align_full_matrix(acg, empty, scheme()).score, 0);
  EXPECT_EQ(overlap_align(acg, empty, scheme()).score, 0);
  EXPECT_EQ(overlap_align_full_matrix(empty, acg, scheme()).score, 0);
}

// ---------- affine-gap semi-global ----------

ScoringScheme affine_sg() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -8, -2);
}

Score brute_force_fitting_affine(const Sequence& a, const Sequence& b) {
  Score best = kNegInf;
  for (std::size_t js = 0; js <= b.size(); ++js) {
    for (std::size_t je = js; je <= b.size(); ++je) {
      const Sequence window = b.subsequence(js, je - js);
      best = std::max(best,
                      global_score_affine(a.residues(), window.residues(),
                                          affine_sg()));
    }
  }
  return best;
}

Score brute_force_overlap_affine(const Sequence& a, const Sequence& b) {
  Score best = kNegInf;
  for (std::size_t is = 0; is <= a.size(); ++is) {
    const Sequence suffix = a.subsequence(is, a.size() - is);
    for (std::size_t je = 0; je <= b.size(); ++je) {
      const Sequence prefix = b.subsequence(0, je);
      best = std::max(best,
                      global_score_affine(suffix.residues(),
                                          prefix.residues(), affine_sg()));
    }
  }
  return best;
}

TEST(FittingAffine, MatchesBruteForceOnSmallPairs) {
  Xoshiro256 rng(179);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(7), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(10), rng);
    const Alignment aln = fitting_align_full_matrix_affine(a, b,
                                                           affine_sg());
    EXPECT_EQ(aln.score, brute_force_fitting_affine(a, b))
        << a.to_string() << " / " << b.to_string();
    EXPECT_EQ(score_alignment(aln, affine_sg(), Alphabet::dna()),
              aln.score);
  }
}

TEST(OverlapAffine, MatchesBruteForceOnSmallPairs) {
  Xoshiro256 rng(180);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(9), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(9), rng);
    const Alignment aln = overlap_align_full_matrix_affine(a, b,
                                                           affine_sg());
    EXPECT_EQ(aln.score, brute_force_overlap_affine(a, b))
        << a.to_string() << " / " << b.to_string();
    if (aln.length() > 0) {
      EXPECT_EQ(score_alignment(aln, affine_sg(), Alphabet::dna()),
                aln.score);
    }
  }
}

TEST(SemiglobalAffine, ReducesToLinearWhenOpenIsZero) {
  Xoshiro256 rng(181);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme affine(m, 0, -6);
  const ScoringScheme linear(m, -6);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(30), rng);
    EXPECT_EQ(fitting_align_full_matrix_affine(a, b, affine).score,
              fitting_align_full_matrix(a, b, linear).score);
    EXPECT_EQ(overlap_align_full_matrix_affine(a, b, affine).score,
              overlap_align_full_matrix(a, b, linear).score);
  }
}

TEST(FittingAffine, LongInternalGapBenefitsFromAffine) {
  // A query matching two blocks of the host separated by an insertion:
  // the affine model charges one open for the long internal gap.
  const SubstitutionMatrix m = scoring::dna(10, -10);
  const ScoringScheme scheme(m, -9, -1);
  const Sequence query(Alphabet::dna(), "ACGTACGT");
  const Sequence host(Alphabet::dna(),
                      "TTTTTACGTGGGGGGGGGGGGACGTTTTTT");
  const Alignment aln = fitting_align_full_matrix_affine(query, host,
                                                         scheme);
  // 8 matches (80) + one 12-gap in the query (-9 - 12).
  EXPECT_EQ(aln.score, 80 - 9 - 12);
}

TEST(Semiglobal, RejectsAffine) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const Sequence a(Alphabet::dna(), "ACG");
  EXPECT_THROW(fitting_align(a, a, affine), std::invalid_argument);
  EXPECT_THROW(overlap_align(a, a, affine), std::invalid_argument);
}

}  // namespace
}  // namespace flsa
