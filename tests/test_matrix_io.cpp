// Tests for NCBI-format substitution-matrix I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "scoring/builtin.hpp"
#include "scoring/matrix_io.hpp"

namespace flsa {
namespace {

constexpr const char* kTinyMatrix = R"(# toy DNA matrix
   A  C  G  T
A  5 -4 -4 -4
C -4  5 -4 -4
G -4 -4  5 -4
T -4 -4 -4  5
)";

TEST(MatrixIo, ParsesTinyMatrix) {
  std::istringstream in(kTinyMatrix);
  const scoring::LoadedMatrix loaded = scoring::read_matrix(in, "toy");
  EXPECT_EQ(loaded.alphabet->size(), 4u);
  EXPECT_EQ(loaded.matrix->name(), "toy");
  EXPECT_EQ(loaded.matrix->score('A', 'A'), 5);
  EXPECT_EQ(loaded.matrix->score('A', 'T'), -4);
  EXPECT_TRUE(loaded.matrix->is_symmetric());
}

TEST(MatrixIo, RoundTripsBlosum62) {
  std::ostringstream out;
  scoring::write_matrix(out, scoring::blosum62());
  std::istringstream in(out.str());
  const scoring::LoadedMatrix loaded =
      scoring::read_matrix(in, "blosum62-copy");
  ASSERT_EQ(loaded.alphabet->size(), 20u);
  for (Residue x = 0; x < 20; ++x) {
    for (Residue y = 0; y < 20; ++y) {
      // Residue codes may differ only if letter order differed; the writer
      // preserves order, so codes are directly comparable.
      EXPECT_EQ(loaded.matrix->at(x, y), scoring::blosum62().at(x, y));
    }
  }
}

TEST(MatrixIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("\n# c1\n\n  A C\nA 1 0\n# mid comment\nC 0 1\n");
  const scoring::LoadedMatrix loaded = scoring::read_matrix(in, "x");
  EXPECT_EQ(loaded.matrix->score('C', 'C'), 1);
}

TEST(MatrixIo, RejectsRaggedRow) {
  std::istringstream in("  A C\nA 1 0\nC 0\n");
  EXPECT_THROW(scoring::read_matrix(in, "x"), std::invalid_argument);
}

TEST(MatrixIo, RejectsLabelMismatch) {
  std::istringstream in("  A C\nA 1 0\nG 0 1\n");
  EXPECT_THROW(scoring::read_matrix(in, "x"), std::invalid_argument);
}

TEST(MatrixIo, RejectsMissingRows) {
  std::istringstream in("  A C\nA 1 0\n");
  EXPECT_THROW(scoring::read_matrix(in, "x"), std::invalid_argument);
}

TEST(MatrixIo, RejectsNonIntegerScores) {
  std::istringstream in("  A C\nA 1 x\nC 0 1\n");
  EXPECT_THROW(scoring::read_matrix(in, "x"), std::invalid_argument);
}

TEST(MatrixIo, RejectsEmptyInput) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(scoring::read_matrix(in, "x"), std::invalid_argument);
}

TEST(MatrixIo, MissingFileThrows) {
  EXPECT_THROW(scoring::read_matrix_file("/nonexistent/matrix.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace flsa
