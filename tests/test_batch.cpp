// Tests for the batch (many-pairs) aligner.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "parallel/batch.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(Batch, EmptyBatch) {
  const auto results =
      align_batch({}, ScoringScheme::paper_default(), {}, 4);
  EXPECT_TRUE(results.empty());
}

TEST(Batch, ResultsMatchSequentialPerPair) {
  Xoshiro256 rng(181);
  std::vector<Sequence> as, bs;
  for (int i = 0; i < 12; ++i) {
    as.push_back(random_sequence(Alphabet::protein(),
                                 20 + rng.bounded(120), rng));
    bs.push_back(random_sequence(Alphabet::protein(),
                                 20 + rng.bounded(120), rng));
  }
  std::vector<AlignJob> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(AlignJob{&as[static_cast<std::size_t>(i)],
                            &bs[static_cast<std::size_t>(i)]});
  }
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const auto results = align_batch(jobs, scheme, {}, 4);
  ASSERT_EQ(results.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(results[i].alignment.score,
              full_matrix_score(as[i], bs[i], scheme))
        << "pair " << i;
  }
}

TEST(Batch, ThreadCountsAgree) {
  Xoshiro256 rng(182);
  std::vector<Sequence> as, bs;
  for (int i = 0; i < 9; ++i) {
    as.push_back(random_sequence(Alphabet::dna(), 30 + rng.bounded(70),
                                 rng));
    bs.push_back(random_sequence(Alphabet::dna(), 30 + rng.bounded(70),
                                 rng));
  }
  std::vector<AlignJob> jobs;
  for (std::size_t i = 0; i < 9; ++i) {
    jobs.push_back(AlignJob{&as[i], &bs[i]});
  }
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -6);
  const auto one = align_batch(jobs, scheme, {}, 1);
  for (unsigned threads : {2u, 3u, 8u}) {
    const auto many = align_batch(jobs, scheme, {}, threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(many[i].alignment.score, one[i].alignment.score);
      EXPECT_EQ(many[i].alignment.gapped_a, one[i].alignment.gapped_a);
    }
  }
}

TEST(Batch, HonoursAlignOptions) {
  Xoshiro256 rng(183);
  const Sequence a = random_sequence(Alphabet::protein(), 300, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 300, rng);
  std::vector<AlignJob> jobs{AlignJob{&a, &b}};
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  options.fastlsa.base_case_cells = 256;
  const auto results =
      align_batch(jobs, ScoringScheme::paper_default(), options, 2);
  EXPECT_EQ(results[0].report.chosen, Strategy::kFastLsa);
  EXPECT_GT(results[0].report.stats.base_case_invocations, 1u);
}

TEST(Batch, OneVsMany) {
  Xoshiro256 rng(184);
  const Sequence query = random_sequence(Alphabet::protein(), 100, rng);
  std::vector<Sequence> targets;
  for (int i = 0; i < 6; ++i) {
    targets.push_back(
        random_sequence(Alphabet::protein(), 50 + rng.bounded(100), rng));
  }
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const auto results = align_one_vs_many(query, targets, scheme, {}, 3);
  ASSERT_EQ(results.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(results[i].alignment.score,
              full_matrix_score(query, targets[i], scheme));
  }
}

TEST(Batch, NullJobRejected) {
  const Sequence a(Alphabet::dna(), "ACG");
  std::vector<AlignJob> jobs{AlignJob{&a, nullptr}};
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -2);
  EXPECT_THROW(align_batch(jobs, scheme), std::invalid_argument);
}

TEST(Batch, ReportsPerJobErrors) {
  // A failing job (alphabet mismatch) is reported on its own result slot
  // instead of throwing, and does not throw away its neighbours' work.
  Xoshiro256 rng(185);
  const Sequence a = random_sequence(Alphabet::protein(), 80, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 90, rng);
  const Sequence dna(Alphabet::dna(), "ACGTACGT");
  std::vector<AlignJob> jobs{AlignJob{&a, &b}, AlignJob{&dna, &b},
                             AlignJob{&b, &a}};
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const auto results = align_batch(jobs, scheme, {}, 2);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].alignment.score, full_matrix_score(a, b, scheme));
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[2].alignment.score, full_matrix_score(b, a, scheme));

  EXPECT_FALSE(results[1].ok());
  ASSERT_NE(results[1].error, nullptr);
  EXPECT_FALSE(results[1].error_message.empty());
  EXPECT_THROW(std::rethrow_exception(results[1].error),
               std::invalid_argument);
}

TEST(Batch, AllJobsFailingStillReturnsAllResults) {
  const Sequence dna(Alphabet::dna(), "ACGT");
  const Sequence prot(Alphabet::protein(), "ACDEF");
  std::vector<AlignJob> jobs(5, AlignJob{&dna, &prot});
  const auto results =
      align_batch(jobs, ScoringScheme::paper_default(), {}, 3);
  ASSERT_EQ(results.size(), 5u);
  for (const BatchResult& r : results) {
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error, nullptr);
    EXPECT_FALSE(r.error_message.empty());
  }
}

}  // namespace
}  // namespace flsa
