// Golden regression tests: exact scores, cell counts and shape statistics
// for fixed seeds. Any algorithmic drift — a changed tie-break, an
// off-by-one in grid geometry, a different recursion shape — trips these
// even when all the cross-checks still agree with each other.
#include <gtest/gtest.h>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"

namespace flsa {
namespace {

TEST(Golden, Prot500WorkloadIsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  ASSERT_EQ(pair.a.size(), 500u);
  ASSERT_EQ(pair.b.size(), 493u);
  // First residues of the parent are frozen by the PRNG contract.
  EXPECT_EQ(pair.a.to_string().substr(0, 10), "PPFWVYIIIY");
  EXPECT_EQ(full_matrix_score(pair.a, pair.b,
                              ScoringScheme::paper_default()),
            7534);
}

TEST(Golden, FastLsaShapeStatsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  FastLsaOptions options;
  options.k = 4;
  options.base_case_cells = 1024;
  FastLsaStats stats;
  const Alignment aln = fastlsa_align(pair.a, pair.b,
                                      ScoringScheme::paper_default(),
                                      options, &stats);
  EXPECT_EQ(aln.score, 7534);
  // Exact work/shape fingerprint of the recursion for this input.
  EXPECT_EQ(stats.counters.cells_scored, 288566u);
  EXPECT_EQ(stats.counters.cells_stored, 15334u);
  EXPECT_EQ(stats.counters.total_cells(), 303900u);
  EXPECT_EQ(stats.base_case_invocations, 32u);
  EXPECT_EQ(stats.recursive_splits, 6u);
  EXPECT_EQ(stats.max_recursion_depth, 3u);
}

TEST(Golden, HirschbergCellCountStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  DpCounters counters;
  HirschbergOptions options;
  options.base_case_cells = 256;
  hirschberg_align(pair.a, pair.b, ScoringScheme::paper_default(), options,
                   &counters);
  EXPECT_EQ(counters.total_cells(), 485741u);
}

TEST(Golden, AffineScoreStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  const ScoringScheme scheme(scoring::mdm78(), -12, -2);
  EXPECT_EQ(global_score_affine(pair.a.residues(), pair.b.residues(),
                                scheme),
            7562);
}

TEST(Golden, EditDistanceAndLcsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  EXPECT_EQ(edit_distance(a, b), 115u);
  EXPECT_EQ(longest_common_subsequence(a, b).length, 402u);
}

TEST(Golden, VirtualTimeFingerprintStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1024;
  const SimulatedRun run =
      record_fastlsa(pair.a, pair.b, ScoringScheme::paper_default(),
                     options, 8, 1, 1, 1);
  EXPECT_EQ(run.trace.total_cells(), 276345u);
  EXPECT_EQ(run.trace.grids.size(), 130u);
}

}  // namespace
}  // namespace flsa
