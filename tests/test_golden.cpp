// Golden regression tests: exact scores, cell counts and shape statistics
// for fixed seeds. Any algorithmic drift — a changed tie-break, an
// off-by-one in grid geometry, a different recursion shape — trips these
// even when all the cross-checks still agree with each other.
#include <gtest/gtest.h>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"

namespace flsa {
namespace {

TEST(Golden, Prot500WorkloadIsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  ASSERT_EQ(pair.a.size(), 500u);
  ASSERT_EQ(pair.b.size(), 493u);
  // First residues of the parent are frozen by the PRNG contract.
  EXPECT_EQ(pair.a.to_string().substr(0, 10), "PPFWVYIIIY");
  EXPECT_EQ(full_matrix_score(pair.a, pair.b,
                              ScoringScheme::paper_default()),
            7534);
}

TEST(Golden, FastLsaShapeStatsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  FastLsaOptions options;
  options.k = 4;
  options.base_case_cells = 1024;
  FastLsaStats stats;
  const Alignment aln = fastlsa_align(pair.a, pair.b,
                                      ScoringScheme::paper_default(),
                                      options, &stats);
  EXPECT_EQ(aln.score, 7534);
  // Exact work/shape fingerprint of the recursion for this input.
  EXPECT_EQ(stats.counters.cells_scored, 288566u);
  EXPECT_EQ(stats.counters.cells_stored, 15334u);
  EXPECT_EQ(stats.counters.total_cells(), 303900u);
  EXPECT_EQ(stats.base_case_invocations, 32u);
  EXPECT_EQ(stats.recursive_splits, 6u);
  EXPECT_EQ(stats.max_recursion_depth, 3u);
}

TEST(Golden, HirschbergCellCountStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  DpCounters counters;
  HirschbergOptions options;
  options.base_case_cells = 256;
  hirschberg_align(pair.a, pair.b, ScoringScheme::paper_default(), options,
                   &counters);
  EXPECT_EQ(counters.total_cells(), 485741u);
}

TEST(Golden, AffineScoreStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  const ScoringScheme scheme(scoring::mdm78(), -12, -2);
  EXPECT_EQ(global_score_affine(pair.a.residues(), pair.b.residues(),
                                scheme),
            7562);
}

TEST(Golden, EditDistanceAndLcsStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();
  EXPECT_EQ(edit_distance(a, b), 115u);
  EXPECT_EQ(longest_common_subsequence(a, b).length, 402u);
}

// The paper's Figure 1 worked example (MDM78, optimal score 82) on EVERY
// registered kernel tier — including the saturating narrow tiers — and
// every wavefront scheduler. The registry loop means a newly added tier
// is golden-tested automatically.
TEST(Golden, PaperWorkedExampleOnEveryKernelTierAndScheduler) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Alignment fm = full_matrix_align(a, b, scheme);
  ASSERT_EQ(fm.score, 82);

  for (const KernelInfo& info : kernel_registry()) {
    const KernelKind kind = info.kind;
    EXPECT_EQ(global_score_linear(kind, a.residues(), b.residues(), scheme),
              82)
        << info.name;

    HirschbergOptions hopts;
    hopts.base_case_cells = 2;
    hopts.kernel = kind;
    EXPECT_EQ(hirschberg_align(a, b, scheme, hopts).score, 82) << info.name;

    FastLsaOptions fopts;
    fopts.k = 2;
    fopts.base_case_cells = 16;
    fopts.kernel = kind;
    const Alignment fl = fastlsa_align(a, b, scheme, fopts);
    EXPECT_EQ(fl.score, 82) << info.name;
    EXPECT_EQ(fl.gapped_a, fm.gapped_a) << info.name;
    EXPECT_EQ(fl.gapped_b, fm.gapped_b) << info.name;

    for (SchedulerKind sched : {SchedulerKind::kBarrierStaged,
                                SchedulerKind::kDependencyCounter,
                                SchedulerKind::kWorkStealing}) {
      ParallelOptions popts;
      popts.threads = 2;
      popts.scheduler = sched;
      const Alignment par = parallel_fastlsa_align(a, b, scheme, fopts,
                                                   popts);
      EXPECT_EQ(par.score, 82) << info.name << "/" << to_string(sched);
      EXPECT_EQ(par.gapped_a, fm.gapped_a)
          << info.name << "/" << to_string(sched);
    }
  }
}

TEST(Golden, VirtualTimeFingerprintStable) {
  const SequencePair pair = bench::sized_workload(500).make();
  FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1024;
  const SimulatedRun run =
      record_fastlsa(pair.a, pair.b, ScoringScheme::paper_default(),
                     options, 8, 1, 1, 1);
  EXPECT_EQ(run.trace.total_cells(), 276345u);
  EXPECT_EQ(run.trace.grids.size(), 130u);
}

}  // namespace
}  // namespace flsa
