// Tests for the configuration advisor.
#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(Advisor, SmallProblemGetsFullMatrix) {
  MachineProfile machine;
  machine.cache_bytes = 1u << 20;
  const Recommendation rec = recommend(100, 100, false, machine);
  EXPECT_EQ(rec.strategy, Strategy::kFullMatrix);
  EXPECT_NE(rec.rationale.find("cache"), std::string::npos);
}

TEST(Advisor, LargeProblemGetsFastLsa) {
  MachineProfile machine;
  machine.cache_bytes = 1u << 20;
  const Recommendation rec = recommend(100000, 100000, false, machine);
  EXPECT_EQ(rec.strategy, Strategy::kFastLsa);
  EXPECT_GE(rec.fastlsa.k, 2u);
  EXPECT_GE(rec.fastlsa.base_case_cells, 16u);
  // The buffer fits in half the cache.
  EXPECT_LE(rec.fastlsa.base_case_cells * sizeof(Score),
            machine.cache_bytes / 2);
}

TEST(Advisor, AffineCellsShrinkTheBuffer) {
  MachineProfile machine;
  machine.cache_bytes = 1u << 20;
  const Recommendation linear = recommend(50000, 50000, false, machine);
  const Recommendation affine = recommend(50000, 50000, true, machine);
  EXPECT_LT(affine.fastlsa.base_case_cells, linear.fastlsa.base_case_cells);
}

TEST(Advisor, MoreProcessorsPreferLargerK) {
  MachineProfile one;
  one.cache_bytes = 1u << 20;
  one.processors = 1;
  MachineProfile many = one;
  many.processors = 16;
  const Recommendation rec1 = recommend(50000, 50000, false, one);
  const Recommendation rec16 = recommend(50000, 50000, false, many);
  EXPECT_GE(rec16.fastlsa.k, rec1.fastlsa.k);
  EXPECT_EQ(rec16.parallel.threads, 16u);
}

TEST(Advisor, TightMemoryCapsK) {
  MachineProfile machine;
  machine.cache_bytes = 1u << 16;
  machine.processors = 16;  // pressure toward large k
  machine.memory_bytes = 3u << 20;
  const Recommendation rec = recommend(100000, 100000, false, machine);
  // Grid lines k*(m+n) cells must fit 3 MiB: k <= ~3.9.
  EXPECT_LE(rec.fastlsa.k, 4u);
}

TEST(Advisor, RecommendationActuallyWorks) {
  Xoshiro256 rng(191);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 400, model, rng);
  MachineProfile machine;
  machine.cache_bytes = 64 * 1024;
  machine.memory_bytes = 1u << 20;
  const Recommendation rec =
      recommend(pair.a.size(), pair.b.size(), false, machine);
  ASSERT_EQ(rec.strategy, Strategy::kFastLsa);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  FastLsaStats stats;
  const Alignment aln =
      fastlsa_align(pair.a, pair.b, scheme, rec.fastlsa, &stats);
  EXPECT_EQ(aln.score, full_matrix_score(pair.a, pair.b, scheme));
  EXPECT_LE(stats.peak_bytes, machine.memory_bytes);
}

TEST(Advisor, PredictedCostIsPositiveAndOrdered) {
  MachineProfile machine;
  machine.cache_bytes = 1u << 20;
  const Recommendation small = recommend(10000, 10000, false, machine);
  const Recommendation large = recommend(40000, 40000, false, machine);
  EXPECT_GT(small.predicted_cost, 0.0);
  EXPECT_GT(large.predicted_cost, small.predicted_cost);
}

TEST(Advisor, RejectsNonsenseProfiles) {
  MachineProfile machine;
  machine.processors = 0;
  EXPECT_THROW(recommend(100, 100, false, machine), std::invalid_argument);
  machine.processors = 1;
  machine.cache_bytes = 128;
  EXPECT_THROW(recommend(100, 100, false, machine), std::invalid_argument);
}

}  // namespace
}  // namespace flsa
