// Tests for FASTQ I/O and the MSA consensus utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "core/textutil.hpp"
#include "msa/center_star.hpp"
#include "scoring/builtin.hpp"
#include "sequence/fastq.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(Fastq, ParsesRecords) {
  std::istringstream in(
      "@read1 first\nACGT\n+\nIIII\n@read2\nTTGG\n+anything\n!!II\n");
  const auto records = read_fastq(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence.id(), "read1");
  EXPECT_EQ(records[0].sequence.description(), "first");
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(records[0].phred(0), 'I' - 33);
  EXPECT_DOUBLE_EQ(records[0].mean_phred(), 'I' - 33);
  EXPECT_EQ(records[1].phred(0), 0);  // '!' = Phred 0
  EXPECT_NEAR(records[1].mean_phred(), (0 + 0 + 40 + 40) / 4.0, 1e-12);
}

TEST(Fastq, RoundTripsThroughWriter) {
  Xoshiro256 rng(271);
  std::vector<FastqRecord> records;
  for (int i = 0; i < 3; ++i) {
    const Sequence s = random_sequence(
        Alphabet::dna(), 20 + static_cast<std::size_t>(i), rng,
                                       "r" + std::to_string(i));
    std::string quality(s.size(), static_cast<char>(33 + 30 + i));
    records.push_back(FastqRecord{s, std::move(quality)});
  }
  std::ostringstream out;
  write_fastq(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in, Alphabet::dna());
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].sequence.to_string(),
              records[i].sequence.to_string());
    EXPECT_EQ(parsed[i].quality, records[i].quality);
  }
}

TEST(Fastq, RejectsStructuralErrors) {
  const Alphabet& dna = Alphabet::dna();
  std::istringstream no_at("ACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(no_at, dna), std::invalid_argument);
  std::istringstream no_plus("@r\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(no_plus, dna), std::invalid_argument);
  std::istringstream short_quality("@r\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(short_quality, dna), std::invalid_argument);
  std::istringstream truncated("@r\nACGT\n+\n");
  EXPECT_THROW(read_fastq(truncated, dna), std::invalid_argument);
  std::istringstream bad_residue("@r\nACGX\n+\nIIII\n");
  EXPECT_THROW(read_fastq(bad_residue, dna), std::invalid_argument);
  EXPECT_THROW(read_fastq_file("/nonexistent.fastq", dna),
               std::runtime_error);
}

TEST(Fastq, HandlesWindowsLineEndings) {
  std::istringstream in("@r one\r\nACGT\r\n+\r\nIIII\r\n");
  const auto records = read_fastq(in, Alphabet::dna());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
  EXPECT_EQ(records[0].sequence.description(), "one");
  EXPECT_EQ(records[0].quality, "IIII");
}

TEST(Fastq, OversizedLineThrowsCleanly) {
  ParseLimits limits;
  limits.max_line_bytes = 8;
  std::istringstream in("@r\n" + std::string(32, 'A') + "\n+\n" +
                        std::string(32, 'I') + "\n");
  EXPECT_THROW(read_fastq(in, Alphabet::dna(), limits), std::invalid_argument);
}

TEST(Fastq, OversizedRecordThrowsAndNamesIt) {
  ParseLimits limits;
  limits.max_record_residues = 4;
  std::istringstream in("@big\nACGTACGT\n+\nIIIIIIII\n");
  try {
    read_fastq(in, Alphabet::dna(), limits);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("big"), std::string::npos);
  }
}

TEST(Fastq, TruncatedFinalRecordNamesIt) {
  std::istringstream in("@ok\nACGT\n+\nIIII\n@cut\nACGT\n");
  try {
    read_fastq(in, Alphabet::dna());
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cut"), std::string::npos);
  }
}

TEST(Consensus, MajorityRuleAndGapSkipping) {
  msa::MultipleAlignment aln;
  aln.rows = {"AC-GT", "AC-GA", "ATCGT"};
  EXPECT_EQ(msa::consensus(aln, Alphabet::dna()), "ACGT");
  const auto conservation =
      msa::column_conservation(aln, Alphabet::dna());
  ASSERT_EQ(conservation.size(), 5u);
  EXPECT_NEAR(conservation[0], 1.0, 1e-12);        // AAA
  EXPECT_NEAR(conservation[1], 2.0 / 3.0, 1e-12);  // CCT
  EXPECT_NEAR(conservation[2], 0.0, 1e-12);        // --C: gap majority
  EXPECT_NEAR(conservation[3], 1.0, 1e-12);        // GGG
  EXPECT_NEAR(conservation[4], 2.0 / 3.0, 1e-12);  // TAT
}

TEST(Consensus, RecoversAncestorOfACleanFamily) {
  Xoshiro256 rng(272);
  const Sequence ancestor = random_sequence(Alphabet::dna(), 80, rng);
  MutationModel light;
  light.substitution_rate = 0.05;
  light.insertion_rate = 0.005;
  light.deletion_rate = 0.005;
  std::vector<Sequence> family;
  for (int i = 0; i < 7; ++i) {
    family.push_back(mutate(ancestor, light, rng));
  }
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -6);
  const msa::MultipleAlignment aln =
      msa::center_star_align(family, scheme);
  const std::string cons = msa::consensus(aln, Alphabet::dna());
  // Independent mutations mostly cancel: the consensus is very close to
  // the ancestor.
  const double d = static_cast<double>(
      edit_distance(cons, ancestor.to_string()));
  EXPECT_LT(d / static_cast<double>(ancestor.size()), 0.10);
}

}  // namespace
}  // namespace flsa
