// Tests for the FastLSA engine's internal tiling arithmetic
// (detail::split_cuts / refine_cuts / clamp_tiles) — the geometry every
// grid cache and wavefront depends on.
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace flsa {
namespace detail {
namespace {

TEST(SplitCuts, EvenDivision) {
  EXPECT_EQ(split_cuts(12, 4), (std::vector<std::size_t>{3, 6, 9}));
  EXPECT_EQ(split_cuts(10, 2), (std::vector<std::size_t>{5}));
}

TEST(SplitCuts, UnevenDivisionIsMonotoneAndInterior) {
  const auto cuts = split_cuts(10, 3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_LT(cuts[0], cuts[1]);
  EXPECT_GT(cuts[0], 0u);
  EXPECT_LT(cuts[1], 10u);
}

TEST(SplitCuts, MorePartsThanExtentClamps) {
  // Each segment must contain at least one residue.
  const auto cuts = split_cuts(3, 10);
  EXPECT_EQ(cuts, (std::vector<std::size_t>{1, 2}));
}

TEST(SplitCuts, DegenerateExtents) {
  EXPECT_TRUE(split_cuts(0, 4).empty());
  EXPECT_TRUE(split_cuts(1, 4).empty());
  EXPECT_TRUE(split_cuts(100, 1).empty());
}

TEST(SplitCuts, SegmentsNearEqualForLargeExtent) {
  const auto cuts = split_cuts(1000, 8);
  ASSERT_EQ(cuts.size(), 7u);
  std::size_t prev = 0;
  for (std::size_t cut : cuts) {
    const std::size_t seg = cut - prev;
    EXPECT_GE(seg, 125u - 1);
    EXPECT_LE(seg, 125u + 1);
    prev = cut;
  }
}

TEST(ClampTiles, Behaviour) {
  EXPECT_EQ(clamp_tiles(8, 1000, 64), 8u);   // unconstrained
  EXPECT_EQ(clamp_tiles(8, 100, 64), 1u);    // 100/64 = 1
  EXPECT_EQ(clamp_tiles(8, 256, 64), 4u);    // 256/64 = 4
  EXPECT_EQ(clamp_tiles(8, 0, 64), 1u);      // never zero
  EXPECT_EQ(clamp_tiles(8, 5, 1), 5u);       // min extent 1: cap = extent
  EXPECT_EQ(clamp_tiles(0, 100, 1), 1u);     // desired 0 still yields 1
}

TEST(RefineCuts, SupersetOfBlockCuts) {
  const std::vector<std::size_t> blocks{30, 60, 90};
  const auto tiles = refine_cuts(120, blocks, 3);
  for (std::size_t b : blocks) {
    EXPECT_NE(std::find(tiles.begin(), tiles.end(), b), tiles.end())
        << "missing block cut " << b;
  }
  // 4 blocks x 3 tiles = 12 segments -> 11 interior cuts.
  EXPECT_EQ(tiles.size(), 11u);
  EXPECT_TRUE(std::is_sorted(tiles.begin(), tiles.end()));
  EXPECT_GT(tiles.front(), 0u);
  EXPECT_LT(tiles.back(), 120u);
}

TEST(RefineCuts, OneTilePerBlockIsIdentity) {
  const std::vector<std::size_t> blocks{25, 50, 75};
  EXPECT_EQ(refine_cuts(100, blocks, 1), blocks);
}

TEST(RefineCuts, MinTileExtentLimitsRefinement) {
  const std::vector<std::size_t> blocks{50};
  // Each 50-wide block refined into up to 8 tiles of >= 20 -> 2 tiles.
  const auto tiles = refine_cuts(100, blocks, 8, 20);
  EXPECT_EQ(tiles.size(), 3u);  // 4 segments
  // And with a huge floor, no refinement at all.
  EXPECT_EQ(refine_cuts(100, blocks, 8, 64), blocks);
}

TEST(RefineCuts, EmptyBlockListRefinesWholeExtent) {
  const auto tiles = refine_cuts(40, {}, 4);
  EXPECT_EQ(tiles, (std::vector<std::size_t>{10, 20, 30}));
}

TEST(RefineCuts, TinyBlocksStayIntact) {
  // Blocks of one residue cannot be subdivided.
  const std::vector<std::size_t> blocks{1, 2, 3};
  EXPECT_EQ(refine_cuts(4, blocks, 5), blocks);
}

}  // namespace
}  // namespace detail
}  // namespace flsa
