// Tests for edit distance, LCS, similar_columns and case-sensitive
// alphabets.
#include <gtest/gtest.h>

#include "core/textutil.hpp"
#include "dp/alignment.hpp"
#include "scoring/builtin.hpp"
#include "sequence/alphabet.hpp"
#include "support/prng.hpp"

namespace flsa {
namespace {

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("same", "same"), 0u);
  EXPECT_EQ(edit_distance("a", "b"), 1u);
}

TEST(EditDistance, IsCaseSensitive) {
  EXPECT_EQ(edit_distance("Hello", "hello"), 1u);
}

TEST(EditDistance, SymmetricAndTriangleInequality) {
  const char* words[] = {"alignment", "assignment", "element", "alimony"};
  for (const char* x : words) {
    for (const char* y : words) {
      EXPECT_EQ(edit_distance(x, y), edit_distance(y, x));
      for (const char* z : words) {
        EXPECT_LE(edit_distance(x, z),
                  edit_distance(x, y) + edit_distance(y, z));
      }
    }
  }
}

std::size_t brute_force_edit(std::string_view a, std::string_view b) {
  std::vector<std::vector<std::size_t>> d(
      a.size() + 1, std::vector<std::size_t>(b.size() + 1));
  for (std::size_t i = 0; i <= a.size(); ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= b.size(); ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + (a[i - 1] != b[j - 1])});
    }
  }
  return d[a.size()][b.size()];
}

TEST(EditDistance, MatchesBruteForceOnRandomStrings) {
  Xoshiro256 rng(201);
  const char charset[] = "abcdef";
  for (int trial = 0; trial < 20; ++trial) {
    std::string a, b;
    for (std::size_t i = 0; i < rng.bounded(30); ++i) {
      a.push_back(charset[rng.bounded(6)]);
    }
    for (std::size_t i = 0; i < rng.bounded(30); ++i) {
      b.push_back(charset[rng.bounded(6)]);
    }
    EXPECT_EQ(edit_distance(a, b), brute_force_edit(a, b)) << a << "/" << b;
  }
}

TEST(Lcs, KnownValues) {
  const LcsResult r = longest_common_subsequence("ABCBDAB", "BDCABA");
  EXPECT_EQ(r.length, 4u);  // classic CLRS example
  EXPECT_EQ(r.subsequence.size(), 4u);
  EXPECT_EQ(longest_common_subsequence("abc", "abc").subsequence, "abc");
  EXPECT_EQ(longest_common_subsequence("abc", "xyz").length, 0u);
  EXPECT_EQ(longest_common_subsequence("", "abc").length, 0u);
}

/// The witness must actually be a subsequence of both inputs.
bool is_subsequence(std::string_view needle, std::string_view haystack) {
  std::size_t i = 0;
  for (char c : haystack) {
    if (i < needle.size() && needle[i] == c) ++i;
  }
  return i == needle.size();
}

TEST(Lcs, WitnessIsValidSubsequenceOfBoth) {
  Xoshiro256 rng(202);
  const char charset[] = "xyzw";
  for (int trial = 0; trial < 15; ++trial) {
    std::string a, b;
    for (std::size_t i = 0; i < 5 + rng.bounded(40); ++i) {
      a.push_back(charset[rng.bounded(4)]);
    }
    for (std::size_t i = 0; i < 5 + rng.bounded(40); ++i) {
      b.push_back(charset[rng.bounded(4)]);
    }
    const LcsResult r = longest_common_subsequence(a, b);
    EXPECT_TRUE(is_subsequence(r.subsequence, a));
    EXPECT_TRUE(is_subsequence(r.subsequence, b));
    EXPECT_EQ(r.subsequence.size(), r.length);
  }
}

TEST(Lcs, LengthRelatesToEditDistanceForEqualLengthInputs) {
  // For any strings: |a| + |b| - 2*LCS >= indel-only edit distance >=
  // levenshtein. Check the standard identity with indel-only distance via
  // LCS on random inputs against brute force levenshtein bound.
  Xoshiro256 rng(203);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    for (std::size_t i = 0; i < 10 + rng.bounded(20); ++i) {
      a.push_back(static_cast<char>('a' + rng.bounded(3)));
    }
    for (std::size_t i = 0; i < 10 + rng.bounded(20); ++i) {
      b.push_back(static_cast<char>('a' + rng.bounded(3)));
    }
    const std::size_t lcs = longest_common_subsequence(a, b).length;
    const std::size_t indel = a.size() + b.size() - 2 * lcs;
    EXPECT_GE(indel, edit_distance(a, b));
  }
}

TEST(EditDistance, RejectsHugeAlphabets) {
  std::string a, b;
  for (int i = 0; i < 70; ++i) a.push_back(static_cast<char>(33 + i));
  b = "x";
  EXPECT_THROW(edit_distance(a, b), std::invalid_argument);
}

TEST(Alphabet, CaseSensitiveMode) {
  const Alphabet ab("aA", "case", /*case_sensitive=*/true);
  EXPECT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab.code('a'), 0);
  EXPECT_EQ(ab.code('A'), 1);
  EXPECT_FALSE(ab.contains('b'));
}

TEST(SimilarColumns, CountsPositiveScorePairs) {
  // The paper's motivating example: V/L are similar (12 > 0), K/L are not.
  Alignment aln;
  aln.gapped_a = "VKL-";
  aln.gapped_b = "LLLP";
  const std::size_t similar =
      similar_columns(aln, scoring::mdm78(), Alphabet::protein());
  // V/L similar, K/L not, L/L match (also similar), -/P gap ignored.
  EXPECT_EQ(similar, 2u);
}

}  // namespace
}  // namespace flsa
