// Loopback integration tests for the alignment daemon: concurrent clients
// must get answers bit-identical to calling align() directly, admission
// control must answer (never hang or drop), and a drain must finish every
// admitted job. These run under TSan in CI — the threading model
// (acceptor / connection handlers / worker pool) is the subject under
// test as much as the responses are.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/aligner.hpp"
#include "dp/banded.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "search/chain.hpp"
#include "search/reference_index.hpp"
#include "sequence/generate.hpp"
#include "service/bounded_queue.hpp"
#include "service/client.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace service {
namespace {

AlignRequest protein_request(const std::string& a, const std::string& b) {
  AlignRequest request;
  request.matrix = WireMatrix::kMdm78;
  request.gap_extend = -10;
  request.a = a;
  request.b = b;
  return request;
}

Alignment direct_align(const std::string& a, const std::string& b) {
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  return align(Sequence(Alphabet::protein(), a),
               Sequence(Alphabet::protein(), b),
               ScoringScheme(scoring::mdm78(), -10), options);
}

// ---- BoundedQueue unit tests ----------------------------------------

TEST(BoundedQueue, AcceptsUpToCapacityThenReportsFull) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), BoundedQueue<int>::Push::kAccepted);
  EXPECT_EQ(queue.try_push(2), BoundedQueue<int>::Push::kAccepted);
  EXPECT_EQ(queue.try_push(3), BoundedQueue<int>::Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);  // FIFO
  EXPECT_EQ(queue.try_push(3), BoundedQueue<int>::Push::kAccepted);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenSignalsClosed) {
  BoundedQueue<int> queue(4);
  queue.try_push(1);
  queue.try_push(2);
  queue.close();
  EXPECT_EQ(queue.try_push(3), BoundedQueue<int>::Push::kClosed);
  EXPECT_EQ(queue.pop(), 1);  // admitted items survive the close
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumers) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  queue.close();
  consumer.join();
}

// ---- End-to-end over loopback ---------------------------------------

TEST(Service, AnswersThePaperWorkedExample) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // MDM78 with linear gap -10: the paper's worked example scores 82.
  const Response response =
      client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);
  EXPECT_FALSE(ok->cigar.empty());
  // cells is the same (m+1)(n+1) DPM-entry count the admission budget
  // (max_request_cells) is expressed in.
  EXPECT_EQ(ok->cells, 9u * 8u);
  EXPECT_EQ(ok->deadline_remaining_ms, -1);  // no deadline requested
  EXPECT_EQ(ok->cigar, direct_align("TLDKLLKD", "TDVLKAD").cigar());
  server.stop();
}

TEST(Service, ScoreOnlySkipsTheCigar) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  request.score_only = true;
  const Response response = client.call(std::move(request));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);
  EXPECT_TRUE(ok->cigar.empty());
  server.stop();
}

TEST(Service, ConcurrentClientsMatchDirectAlignment) {
  AlignmentServer server;
  server.start();

  // Every client thread aligns its own random pairs through the daemon
  // and re-derives the expected answer in-process: scores and CIGARs must
  // be bit-identical (the service adds transport, not variation).
  constexpr unsigned kClients = 8;
  constexpr int kRequestsEach = 6;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Xoshiro256 rng(1000 + t);
        Client client;
        client.connect("127.0.0.1", server.port());
        for (int i = 0; i < kRequestsEach; ++i) {
          MutationModel model;
          const SequencePair pair =
              homologous_pair(Alphabet::protein(), 120, model, rng);
          const std::string a = pair.a.to_string();
          const std::string b = pair.b.to_string();
          const Response response = client.call(protein_request(a, b));
          const auto* ok = std::get_if<AlignResponse>(&response);
          if (ok == nullptr) {
            failures[t] = "no AlignResponse";
            return;
          }
          const Alignment expected = direct_align(a, b);
          if (ok->score != expected.score || ok->cigar != expected.cigar()) {
            failures[t] = "mismatch vs direct align()";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (unsigned t = 0; t < kClients; ++t) {
    EXPECT_EQ(failures[t], "") << "client " << t;
  }
  server.stop();
}

TEST(Service, FullQueueAnswersOverloaded) {
  // One worker and a queue of one: a pipelined burst admits at most
  // 1 running + 1 queued at a time; the surplus must come back as typed
  // OVERLOADED rejections, not hangs or dropped frames.
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(7);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 1500, model, rng);
  const AlignRequest prototype =
      protein_request(pair.a.to_string(), pair.b.to_string());

  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr std::size_t kBurst = 16;
  for (std::size_t i = 0; i < kBurst; ++i) {
    AlignRequest request = prototype;
    client.send(std::move(request));
  }
  std::size_t accepted = 0, overloaded = 0, other = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const Response response = client.receive();  // every frame is answered
    if (std::holds_alternative<AlignResponse>(response)) {
      ++accepted;
    } else if (const auto* error = std::get_if<ErrorResponse>(&response);
               error != nullptr &&
               error->code == ErrorCode::kOverloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(accepted + overloaded, kBurst);
  EXPECT_EQ(other, 0u);
  EXPECT_GE(accepted, 1u);
  EXPECT_GE(overloaded, 1u);
  server.stop();
}

TEST(Service, OversizedRequestAnswersTooLarge) {
  ServiceConfig config;
  config.max_request_cells = 100;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response = client.call(
      protein_request(std::string(20, 'A'), std::string(20, 'A')));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kTooLarge);  // (20+1)^2 = 441 > 100
  server.stop();
}

TEST(Service, StaleQueuedJobAnswersDeadlineExceeded) {
  // The single worker is busy with a multi-millisecond job while the
  // second request (deadline 1 ms) waits in the queue; by the time the
  // worker dequeues it the deadline has passed.
  ServiceConfig config;
  config.workers = 1;
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(11);
  MutationModel model;
  // 16M cells: several milliseconds even in a Release build, so the 1 ms
  // deadline below is comfortably blown while this occupies the worker.
  const SequencePair big =
      homologous_pair(Alphabet::protein(), 4000, model, rng);

  Client client;
  client.connect("127.0.0.1", server.port());
  client.send(protein_request(big.a.to_string(), big.b.to_string()));
  AlignRequest stale = protein_request("TLDKLLKD", "TDVLKAD");
  stale.deadline_ms = 1;
  client.send(std::move(stale));

  bool saw_big = false, saw_deadline = false;
  for (int i = 0; i < 2; ++i) {
    const Response response = client.receive();
    if (std::holds_alternative<AlignResponse>(response)) {
      saw_big = true;
    } else if (const auto* error = std::get_if<ErrorResponse>(&response);
               error != nullptr &&
               error->code == ErrorCode::kDeadlineExceeded) {
      saw_deadline = true;
    }
  }
  EXPECT_TRUE(saw_big);
  EXPECT_TRUE(saw_deadline);
  server.stop();
}

TEST(Service, BadResiduesAnswerBadRequest) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response = client.call(protein_request("AC1GT", "ACGT"));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, PositiveGapPenaltyAnswersBadRequest) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  request.gap_extend = 5;
  const Response response = client.call(std::move(request));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, GarbageFrameAnswersBadRequestOverRawSocket) {
  AlignmentServer server;
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  ASSERT_TRUE(write_frame(fd, "this is not a protocol payload"));
  std::string payload;
  ASSERT_TRUE(read_frame(fd, &payload));
  const Response response = decode_response(payload);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  EXPECT_EQ(error->request_id, 0u);  // unparseable: no id to echo

  ::close(fd);
  server.stop();
}

TEST(Service, StatsVerbReportsServiceCounters) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  (void)client.call(protein_request("TLDKLLKD", "TDVLKAD"));

  const Response response = client.call(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&response);
  ASSERT_NE(stats, nullptr);
  double requests = -1.0, completed = -1.0;
  for (const auto& [name, value] : stats->entries) {
    if (name == "service.requests") requests = value;
    if (name == "service.completed") completed = value;
  }
  // The registry is process-global, so other tests contribute too; at
  // least this test's one completed request must be visible.
  EXPECT_GE(requests, 1.0);
  EXPECT_GE(completed, 1.0);
  server.stop();
}

TEST(Service, DrainFinishesEveryAdmittedJob) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(23);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 1200, model, rng);
  const AlignRequest prototype =
      protein_request(pair.a.to_string(), pair.b.to_string());
  const Alignment expected =
      direct_align(prototype.a, prototype.b);

  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr std::uint64_t kJobs = 3;
  const std::uint64_t before =
      obs::metrics().counter("service.requests").value();
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    AlignRequest request = prototype;
    client.send(std::move(request));
  }
  // Wait for admission (the requests counter ticks in handle_request),
  // then drain while at least one job is still queued behind the single
  // worker.
  while (obs::metrics().counter("service.requests").value() - before <
         kJobs) {
    std::this_thread::yield();
  }
  std::thread stopper([&] { server.stop(); });

  for (std::uint64_t i = 0; i < kJobs; ++i) {
    const Response response = client.receive();
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr) << "admitted job " << i
                           << " was not answered during drain";
    EXPECT_EQ(ok->score, expected.score);
  }
  stopper.join();
  EXPECT_FALSE(server.running());

  // After the drain the listener is gone: new connections are refused.
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port()),
               std::runtime_error);
}

TEST(Service, RequestsAfterDrainStartAnswerShuttingDown) {
  ServiceConfig config;
  config.workers = 1;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  // Ensure the connection is established server-side before stopping.
  (void)client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  server.stop();
  // The drained server shut the sockets down; the client sees EOF (a
  // runtime_error from receive) rather than a hang. A SHUTTING_DOWN
  // answer is possible if the frame races the shutdown; both are clean.
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  try {
    client.send(std::move(request));
    const Response response = client.receive();
    const auto* error = std::get_if<ErrorResponse>(&response);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, ErrorCode::kShuttingDown);
  } catch (const std::exception&) {
    SUCCEED();  // connection already torn down
  }
}

TEST(Service, PipelinedResponsesCarryMatchingRequestIds) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(client.send(protein_request("TLDKLLKD", "TDVLKAD")));
  }
  std::vector<std::uint64_t> received;
  for (int i = 0; i < 8; ++i) {
    const Response response = client.receive();
    const auto* ok = std::get_if<AlignResponse>(&response);
    ASSERT_NE(ok, nullptr);
    received.push_back(ok->request_id);
  }
  std::sort(received.begin(), received.end());
  EXPECT_EQ(received, sent);  // ids are assigned sequentially by send()
  server.stop();
}

TEST(Service, PerRequestTuningOverridesAreAccepted) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  request.k = 2;
  request.base_case_cells = 64;
  const Response response = client.call(std::move(request));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);  // tuning changes the schedule, not the answer
  server.stop();
}

TEST(Service, AdmissionBudgetBoundaryIsInclusive) {
  // The budget and the reported cells use the same definition,
  // (m+1)*(n+1), so a request *exactly at* max_request_cells is admitted
  // and one cell over is rejected.
  ServiceConfig config;
  config.max_request_cells = 21u * 21u;  // 441
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  const Response at_budget = client.call(
      protein_request(std::string(20, 'A'), std::string(20, 'A')));
  const auto* ok = std::get_if<AlignResponse>(&at_budget);
  ASSERT_NE(ok, nullptr) << "a request exactly at the budget was rejected";
  EXPECT_EQ(ok->cells, config.max_request_cells);

  const Response over_budget = client.call(
      protein_request(std::string(21, 'A'), std::string(20, 'A')));
  const auto* error = std::get_if<ErrorResponse>(&over_budget);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kTooLarge);  // 22*21 = 462 > 441
  server.stop();
}

TEST(Service, GenerousDeadlineReportsRemainingSlack) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  request.deadline_ms = 60000;
  const Response response = client.call(std::move(request));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);
  EXPECT_GE(ok->deadline_remaining_ms, 0);
  EXPECT_LE(ok->deadline_remaining_ms, 60000);
  server.stop();
}

TEST(Service, DeadlineExpiringMidAlignmentDiscardsTheStaleResult) {
  // The queue is empty, so the 1 ms deadline survives the dequeue check;
  // it expires *during* the (multi-millisecond) alignment. Before the
  // completion re-check this came back as a stale success — a late "done"
  // the client had already given up on.
  ServiceConfig config;
  config.workers = 1;
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(31);
  MutationModel model;
  const SequencePair big =
      homologous_pair(Alphabet::protein(), 4000, model, rng);

  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request =
      protein_request(big.a.to_string(), big.b.to_string());
  request.deadline_ms = 1;
  const Response response = client.call(std::move(request));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr) << "expired deadline answered with a success";
  EXPECT_EQ(error->code, ErrorCode::kDeadlineExceeded);
  server.stop();
}

TEST(Service, IdleConnectionIsHungUpAfterTheDeadline) {
  ServiceConfig config;
  config.idle_timeout_ms = 100;
  AlignmentServer server(config);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval guard{};  // keep the test itself from hanging on a regression
  guard.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &guard, sizeof(guard));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Send nothing: after ~100 ms of silence the server hangs up and this
  // blocking read sees EOF (not a 10 s guard timeout, not a hang).
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.stop();
}

TEST(Service, IdleDeadlineSparesAClientWaitingOnASlowJob) {
  // A quiet client with a job in flight is patient, not idle: the
  // per-recv deadline may expire many times while the alignment runs,
  // and the answer must still arrive on the open connection.
  ServiceConfig config;
  config.workers = 1;
  config.idle_timeout_ms = 10;
  AlignmentServer server(config);
  server.start();

  Xoshiro256 rng(37);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 2000, model, rng);
  const std::string a = pair.a.to_string();
  const std::string b = pair.b.to_string();

  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response = client.call(protein_request(a, b));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr) << "idle deadline killed a waiting client";
  EXPECT_EQ(ok->score, direct_align(a, b).score);
  server.stop();
}

TEST(Service, ConnectionOverTheCapGetsATypedRefusal) {
  ServiceConfig config;
  config.max_connections = 1;
  AlignmentServer server(config);
  server.start();

  Client first;
  first.connect("127.0.0.1", server.port());
  // Complete a round trip so the first connection is registered.
  (void)first.call(protein_request("TLDKLLKD", "TDVLKAD"));

  // The second connection is answered with CONNECTION_LIMIT, then closed.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval guard{};
  guard.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &guard, sizeof(guard));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string payload;
  ASSERT_TRUE(read_frame(fd, &payload));
  const Response refusal = decode_response(payload);
  const auto* error = std::get_if<ErrorResponse>(&refusal);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kConnectionLimit);
  EXPECT_EQ(error->request_id, 0u);  // connection-scoped, not a request
  EXPECT_TRUE(is_retryable(error->code));
  ::close(fd);

  // The capped-out server still serves its admitted connection.
  const Response still_works =
      first.call(protein_request("TLDKLLKD", "TDVLKAD"));
  const auto* ok = std::get_if<AlignResponse>(&still_works);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);
  server.stop();
}

// ---- Single-fault service behaviour ----------------------------------
// Each certain-fire plan isolates one injector path; the chaos soak in
// test_chaos.cpp mixes them probabilistically.

TEST(Service, InjectedAdmissionRejectIsATypedOverloaded) {
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=5,reject=1");
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response =
      client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kOverloaded);
  EXPECT_TRUE(is_retryable(error->code));
  server.stop();
}

TEST(Service, InjectedDropSurfacesAsATransportError) {
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=5,drop=1");
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  // The connection dies either before the request is read (read-site
  // drop) or before the answer is written (write-site drop): the send or
  // the receive throws a typed TransportError — never a hang.
  EXPECT_THROW(
      {
        client.send(std::move(request));
        (void)client.receive();
      },
      TransportError);
  server.stop();
}

TEST(Service, InjectedTruncationSurfacesAsATransportError) {
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=5,truncate=1");
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  EXPECT_THROW(
      {
        client.send(std::move(request));
        (void)client.receive();
      },
      TransportError);
  server.stop();
}

TEST(Service, InjectedCorruptionSurfacesAsAProtocolErrorNotAScore) {
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=5,corrupt=1");
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRequest request = protein_request("TLDKLLKD", "TDVLKAD");
  client.send(std::move(request));
  EXPECT_THROW((void)client.receive(), ProtocolError);
  server.stop();
}

TEST(Service, InjectedDelayStillAnswersCorrectly) {
  ServiceConfig config;
  config.fault_plan = parse_fault_plan("seed=5,delay=1:20");
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response =
      client.call(protein_request("TLDKLLKD", "TDVLKAD"));
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);  // delay is latency, never wrongness
  EXPECT_EQ(ok->score, 82);
  server.stop();
}

// ---- Reference-indexed search (REF_PUT / SEARCH) ---------------------

TEST(Service, SearchRoundTripsBitIdenticalToInProcessPipeline) {
  // Build a DNA reference with two mutated copies of a gene, register it
  // over the wire, search for the gene, and compare against the
  // in-process pipeline under the server's defaults (k = 12 for DNA,
  // stock ChainedSearchParams, linear gap kDefaultGapExtend): scores,
  // coordinates, and CIGARs must be bit-identical — the service adds
  // transport, not variation.
  Xoshiro256 rng(901);
  const Sequence gene = random_sequence(Alphabet::dna(), 180, rng);
  MutationModel model;
  model.substitution_rate = 0.04;
  const std::string reference_text =
      random_sequence(Alphabet::dna(), 2500, rng).to_string() +
      mutate(gene, model, rng).to_string() +
      random_sequence(Alphabet::dna(), 1500, rng).to_string() +
      mutate(gene, model, rng).to_string() +
      random_sequence(Alphabet::dna(), 1000, rng).to_string();

  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.name = "two-copies";
  put.sequence = reference_text;
  const Response put_response = client.call(std::move(put));
  const auto* registered = std::get_if<RefPutResponse>(&put_response);
  ASSERT_NE(registered, nullptr);
  EXPECT_EQ(registered->residues, reference_text.size());
  EXPECT_GT(registered->distinct_kmers, 0u);
  EXPECT_GE(registered->ref_id, 1u);

  SearchRequest search;
  search.ref_id = registered->ref_id;
  search.matrix = WireMatrix::kDna;
  search.query = gene.to_string();
  const Response response = client.call(std::move(search));
  const auto* ok = std::get_if<SearchResponse>(&response);
  ASSERT_NE(ok, nullptr);

  const search::ReferenceIndex index(
      Sequence(Alphabet::dna(), reference_text), 12);
  search::ChainedSearchStats stats;
  const auto expected = search::chained_search(
      gene, index, ScoringScheme(scoring::dna(), kDefaultGapExtend), {},
      &stats);
  ASSERT_GE(expected.size(), 2u);  // both planted copies
  ASSERT_EQ(ok->hits.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Alignment& want = expected[i].alignment;
    EXPECT_EQ(ok->hits[i].score, want.score) << "hit " << i;
    EXPECT_EQ(ok->hits[i].q_begin, want.a_begin) << "hit " << i;
    EXPECT_EQ(ok->hits[i].q_end, want.a_end) << "hit " << i;
    EXPECT_EQ(ok->hits[i].s_begin, want.b_begin) << "hit " << i;
    EXPECT_EQ(ok->hits[i].s_end, want.b_end) << "hit " << i;
    EXPECT_EQ(ok->hits[i].cigar, want.cigar()) << "hit " << i;
  }
  EXPECT_EQ(ok->anchors, stats.anchors);
  EXPECT_EQ(ok->chains, stats.chains);
  EXPECT_EQ(ok->deadline_remaining_ms, -1);
  server.stop();
}

TEST(Service, SearchScoreOnlySkipsPerHitCigars) {
  Xoshiro256 rng(902);
  const Sequence gene = random_sequence(Alphabet::dna(), 150, rng);
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.sequence = random_sequence(Alphabet::dna(), 800, rng).to_string() +
                 gene.to_string() +
                 random_sequence(Alphabet::dna(), 700, rng).to_string();
  const Response put_response = client.call(std::move(put));
  const auto* registered = std::get_if<RefPutResponse>(&put_response);
  ASSERT_NE(registered, nullptr);

  SearchRequest search;
  search.ref_id = registered->ref_id;
  search.matrix = WireMatrix::kDna;
  search.score_only = true;
  search.query = gene.to_string();
  const Response response = client.call(std::move(search));
  const auto* ok = std::get_if<SearchResponse>(&response);
  ASSERT_NE(ok, nullptr);
  ASSERT_FALSE(ok->hits.empty());
  EXPECT_EQ(ok->hits[0].score, 150 * 5);  // exact planted copy
  for (const WireHit& hit : ok->hits) EXPECT_TRUE(hit.cigar.empty());
  server.stop();
}

TEST(Service, SearchUnknownReferenceAnswersRefNotFound) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  SearchRequest search;
  search.ref_id = 42;  // nothing registered
  search.matrix = WireMatrix::kDna;
  search.query = "ACGTACGTACGTACGT";
  const Response response = client.call(std::move(search));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
  EXPECT_NE(error->message.find("42"), std::string::npos);
  EXPECT_FALSE(is_retryable(error->code));
  server.stop();
}

TEST(Service, SearchAlphabetMismatchAnswersBadRequest) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.sequence = "ACGTACGTACGTACGTACGTACGTACGT";
  const Response put_response = client.call(std::move(put));
  const auto* registered = std::get_if<RefPutResponse>(&put_response);
  ASSERT_NE(registered, nullptr);

  SearchRequest search;
  search.ref_id = registered->ref_id;
  search.matrix = WireMatrix::kMdm78;  // protein vs a DNA reference
  search.query = "ACGT";
  const Response response = client.call(std::move(search));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, OversizedReferenceAnswersTooLarge) {
  ServiceConfig config;
  config.max_reference_residues = 100;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.sequence = std::string(200, 'A');
  const Response response = client.call(std::move(put));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kTooLarge);
  server.stop();
}

TEST(Service, OversizedSearchQueryAnswersTooLarge) {
  // SEARCH admission uses (|query|+1)^2 — the worst-case degenerate gap
  // fill — in the same cell currency as the ALIGN budget.
  ServiceConfig config;
  config.max_request_cells = 10000;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  SearchRequest search;
  search.ref_id = 1;
  search.matrix = WireMatrix::kDna;
  search.query = std::string(200, 'A');  // 201^2 = 40401 > 10000
  const Response response = client.call(std::move(search));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kTooLarge);
  server.stop();
}

TEST(Service, RefPutWithBadResiduesAnswersBadRequest) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  RefPutRequest put;
  put.matrix = WireMatrix::kDna;  // strict DNA: no 'N', no lowercase junk
  put.sequence = "ACGTNACGT";
  const Response response = client.call(std::move(put));
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, SearchStatsCountersAdvance) {
  Xoshiro256 rng(903);
  const Sequence gene = random_sequence(Alphabet::dna(), 120, rng);
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.sequence = random_sequence(Alphabet::dna(), 600, rng).to_string() +
                 gene.to_string();
  const Response put_response = client.call(std::move(put));
  ASSERT_TRUE(std::holds_alternative<RefPutResponse>(put_response));
  SearchRequest search;
  search.ref_id = std::get<RefPutResponse>(put_response).ref_id;
  search.matrix = WireMatrix::kDna;
  search.query = gene.to_string();
  ASSERT_TRUE(
      std::holds_alternative<SearchResponse>(client.call(std::move(search))));

  const Response stats_response = client.call(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&stats_response);
  ASSERT_NE(stats, nullptr);
  auto value = [&](const std::string& name) -> double {
    for (const auto& [key, entry] : stats->entries) {
      if (key == name) return entry;
    }
    return -1.0;
  };
  EXPECT_GE(value("search.ref_puts"), 1.0);
  EXPECT_GE(value("search.refs"), 1.0);
  EXPECT_GE(value("search.requests"), 1.0);
  EXPECT_GE(value("search.completed"), 1.0);
  EXPECT_GE(value("search.hits"), 1.0);
  server.stop();
}

// ---- Streaming uploads + ALIGN_REF -----------------------------------

TEST(Service, StreamedAlignRefIsBitIdenticalToBufferedAlign) {
  // The acceptance bar for the streaming path: chunk-upload a pair into
  // the packed store, align by handle, and the answer must match the
  // buffered ALIGN verb bit for bit — same score, same CIGAR, same cell
  // count. The store's 2-bit round trip must be invisible.
  Xoshiro256 rng(911);
  MutationModel model;
  model.substitution_rate = 0.05;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 3000, model, rng);

  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.chunk_residues = 512;  // force many chunks
  options.name = "a";
  const Response up_a = client.upload_sequence(pair.a.to_string(), options);
  const auto* ok_a = std::get_if<SeqOkResponse>(&up_a);
  ASSERT_NE(ok_a, nullptr);
  EXPECT_EQ(ok_a->residues, pair.a.size());
  ASSERT_GE(ok_a->ref_id, 1u);

  options.name = "b";
  const Response up_b = client.upload_sequence(pair.b.to_string(), options);
  const auto* ok_b = std::get_if<SeqOkResponse>(&up_b);
  ASSERT_NE(ok_b, nullptr);
  ASSERT_GE(ok_b->ref_id, 1u);
  EXPECT_NE(ok_a->ref_id, ok_b->ref_id);

  AlignRefRequest by_handle;
  by_handle.ref_a = ok_a->ref_id;
  by_handle.ref_b = ok_b->ref_id;
  by_handle.matrix = WireMatrix::kDna;
  const Response streamed = client.call(by_handle);
  const auto* part = std::get_if<AlignPartResponse>(&streamed);
  ASSERT_NE(part, nullptr);
  EXPECT_TRUE(part->last);

  AlignRequest buffered;
  buffered.matrix = WireMatrix::kDna;
  buffered.a = pair.a.to_string();
  buffered.b = pair.b.to_string();
  const Response direct = client.call(std::move(buffered));
  const auto* full = std::get_if<AlignResponse>(&direct);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(part->score, full->score);
  EXPECT_EQ(part->cigar_part, full->cigar);
  EXPECT_EQ(part->cells, full->cells);
  server.stop();
}

TEST(Service, AlignRefStreamsMultiplePartsAndTheClientReassembles) {
  // Shrink the response slice so even a modest CIGAR spans several
  // ALIGN_PART frames; Client::call must stitch them back together.
  ServiceConfig config;
  config.align_part_chars = 16;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Xoshiro256 rng(912);
  MutationModel model;
  model.substitution_rate = 0.08;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 800, model, rng);

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.chunk_residues = 256;
  const Response uploaded = client.upload_sequence(pair.a.to_string(), options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);

  AlignRefRequest request;
  request.ref_a = ok->ref_id;
  request.matrix = WireMatrix::kDna;
  request.b = pair.b.to_string();  // inline second sequence
  const Response streamed = client.call(request);
  const auto* part = std::get_if<AlignPartResponse>(&streamed);
  ASSERT_NE(part, nullptr);
  EXPECT_TRUE(part->last);
  EXPECT_GT(part->cigar_part.size(), config.align_part_chars);

  AlignRequest buffered;
  buffered.matrix = WireMatrix::kDna;
  buffered.a = pair.a.to_string();
  buffered.b = pair.b.to_string();
  const Response direct = client.call(std::move(buffered));
  const auto* full = std::get_if<AlignResponse>(&direct);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(part->score, full->score);
  EXPECT_EQ(part->cigar_part, full->cigar);
  server.stop();
}

TEST(Service, UploadResumesReplaysAndRejectsGaps) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Xoshiro256 rng(913);
  const std::string letters =
      random_sequence(Alphabet::dna(), 1000, rng).to_string();

  SeqBeginRequest begin;
  begin.upload_token = 77;
  begin.matrix = WireMatrix::kDna;
  begin.name = "resumable";
  const Response opened = client.call(begin);
  const auto* ok = std::get_if<SeqOkResponse>(&opened);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->next_offset, 0u);

  SeqChunkRequest first;
  first.upload_token = 77;
  first.offset = 0;
  first.data = letters.substr(0, 400);
  first.prefix_hash = fnv1a64(letters.data(), 400);
  const Response after_first = client.call(first);
  const auto* ack = std::get_if<SeqOkResponse>(&after_first);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->next_offset, 400u);

  // Replaying an already-applied chunk (a retry after a lost ack) must
  // be acknowledged without being applied twice.
  const Response replayed = client.call(first);
  const auto* replay_ack = std::get_if<SeqOkResponse>(&replayed);
  ASSERT_NE(replay_ack, nullptr);
  EXPECT_EQ(replay_ack->next_offset, 400u);

  // A chunk past the high-water mark is a gap: rejected, session kept.
  SeqChunkRequest gap;
  gap.upload_token = 77;
  gap.offset = 500;
  gap.data = letters.substr(500, 100);
  const Response gapped = client.call(gap);
  const auto* gap_error = std::get_if<ErrorResponse>(&gapped);
  ASSERT_NE(gap_error, nullptr);
  EXPECT_EQ(gap_error->code, ErrorCode::kBadRequest);

  // Re-BEGIN with the same token answers the resume point.
  const Response reopened = client.call(begin);
  const auto* resume = std::get_if<SeqOkResponse>(&reopened);
  ASSERT_NE(resume, nullptr);
  EXPECT_EQ(resume->next_offset, 400u);

  SeqChunkRequest rest;
  rest.upload_token = 77;
  rest.offset = 400;
  rest.data = letters.substr(400);
  rest.prefix_hash = fnv1a64(letters.data(), letters.size());
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(rest)));

  SeqEndRequest seal;
  seal.upload_token = 77;
  seal.total_residues = letters.size();
  seal.total_hash = fnv1a64(letters.data(), letters.size());
  const Response sealed = client.call(seal);
  const auto* done = std::get_if<SeqOkResponse>(&sealed);
  ASSERT_NE(done, nullptr);
  EXPECT_GE(done->ref_id, 1u);
  EXPECT_EQ(done->residues, letters.size());
  server.stop();
}

TEST(Service, ChunkChecksumMismatchAbortsTheUploadSession) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SeqBeginRequest begin;
  begin.upload_token = 78;
  begin.matrix = WireMatrix::kDna;
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(begin)));

  SeqChunkRequest chunk;
  chunk.upload_token = 78;
  chunk.offset = 0;
  chunk.data = "ACGTACGT";
  chunk.prefix_hash = 0xBAD;  // wrong on purpose (0 would skip the check)
  const Response rejected = client.call(chunk);
  const auto* error = std::get_if<ErrorResponse>(&rejected);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);

  // The session is gone: a follow-up chunk has no upload to land in.
  chunk.prefix_hash = 0;
  const Response orphaned = client.call(chunk);
  const auto* orphan_error = std::get_if<ErrorResponse>(&orphaned);
  ASSERT_NE(orphan_error, nullptr);
  EXPECT_EQ(orphan_error->code, ErrorCode::kBadRequest);

  // Re-BEGIN starts a fresh session from zero, not the poisoned bytes.
  const Response reopened = client.call(begin);
  const auto* fresh = std::get_if<SeqOkResponse>(&reopened);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->next_offset, 0u);
  server.stop();
}

TEST(Service, SeqEndLengthMismatchKeepsTheSessionForResume) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  const std::string letters = "ACGTACGTACGTACGTACGT";  // 20 residues
  SeqBeginRequest begin;
  begin.upload_token = 79;
  begin.matrix = WireMatrix::kDna;
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(begin)));
  SeqChunkRequest chunk;
  chunk.upload_token = 79;
  chunk.data = letters;
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(chunk)));

  // Declaring the wrong total is a client bug or a lost chunk — either
  // way the server must keep the bytes so the client can resume.
  SeqEndRequest wrong;
  wrong.upload_token = 79;
  wrong.total_residues = letters.size() - 3;
  const Response rejected = client.call(wrong);
  const auto* error = std::get_if<ErrorResponse>(&rejected);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);

  const Response reopened = client.call(begin);
  const auto* resume = std::get_if<SeqOkResponse>(&reopened);
  ASSERT_NE(resume, nullptr);
  EXPECT_EQ(resume->next_offset, letters.size());

  SeqEndRequest seal;
  seal.upload_token = 79;
  seal.total_residues = letters.size();
  seal.total_hash = fnv1a64(letters.data(), letters.size());
  const Response sealed = client.call(seal);
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(sealed));
  server.stop();
}

TEST(Service, AlignRefUnknownHandleAnswersRefNotFound) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  AlignRefRequest request;
  request.ref_a = 424242;
  request.matrix = WireMatrix::kDna;
  request.b = "ACGT";
  const Response response = client.call(request);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
  server.stop();
}

TEST(Service, IndexlessStreamedHandleAlignsButRefusesSearch) {
  // An upload sealed without build_index registers in O(1): usable as an
  // ALIGN_REF operand, but SEARCH against it must be a typed refusal,
  // not a crash or an empty result.
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(914);
  const std::string letters =
      random_sequence(Alphabet::dna(), 500, rng).to_string();

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.build_index = false;
  const Response uploaded = client.upload_sequence(letters, options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);

  SearchRequest search;
  search.ref_id = ok->ref_id;
  search.matrix = WireMatrix::kDna;
  search.query = letters.substr(100, 60);
  const Response refused = client.call(std::move(search));
  const auto* error = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);

  AlignRefRequest align_request;
  align_request.ref_a = ok->ref_id;
  align_request.matrix = WireMatrix::kDna;
  align_request.b = letters;  // self-alignment: all matches
  align_request.score_only = true;
  const Response aligned = client.call(align_request);
  ASSERT_TRUE(std::holds_alternative<AlignPartResponse>(aligned));
  server.stop();
}

TEST(Service, StreamedHandleWithIndexAnswersSearch) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(915);
  const Sequence gene = random_sequence(Alphabet::dna(), 150, rng);
  const std::string reference =
      random_sequence(Alphabet::dna(), 800, rng).to_string() +
      gene.to_string() +
      random_sequence(Alphabet::dna(), 400, rng).to_string();

  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.build_index = true;
  options.chunk_residues = 300;
  const Response uploaded = client.upload_sequence(reference, options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);

  SearchRequest search;
  search.ref_id = ok->ref_id;
  search.matrix = WireMatrix::kDna;
  search.query = gene.to_string();
  const Response found = client.call(std::move(search));
  const auto* hits = std::get_if<SearchResponse>(&found);
  ASSERT_NE(hits, nullptr);
  ASSERT_FALSE(hits->hits.empty());
  EXPECT_EQ(hits->hits.front().s_begin, 800u);
  EXPECT_EQ(hits->hits.front().s_end, 950u);
  server.stop();
}

TEST(Service, RefPutWithContentTokenIsRetrySafe) {
  // A retried REF_PUT (same content token) must answer the original
  // handle instead of registering a second copy — the retryability hole
  // the token closes.
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(916);

  RefPutRequest put;
  put.matrix = WireMatrix::kDna;
  put.sequence = random_sequence(Alphabet::dna(), 600, rng).to_string();
  put.content_token = content_token_for(put);

  const Response first = client.call(put);
  const auto* registered = std::get_if<RefPutResponse>(&first);
  ASSERT_NE(registered, nullptr);
  const std::uint64_t original_id = registered->ref_id;

  const Response retried = client.call(put);
  const auto* replayed = std::get_if<RefPutResponse>(&retried);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->ref_id, original_id);
  EXPECT_EQ(replayed->residues, registered->residues);

  // A different sequence under a different token still gets a new id.
  RefPutRequest other;
  other.matrix = WireMatrix::kDna;
  other.sequence = random_sequence(Alphabet::dna(), 600, rng).to_string();
  other.content_token = content_token_for(other);
  const Response fresh = client.call(other);
  const auto* fresh_put = std::get_if<RefPutResponse>(&fresh);
  ASSERT_NE(fresh_put, nullptr);
  EXPECT_NE(fresh_put->ref_id, original_id);
  server.stop();
}

TEST(Service, BandedAlignRefMatchesDirectBandedAlignment) {
  // Substitution-only pair (equal lengths) so a narrow band covers the
  // optimal path; the streamed banded answer must equal banded_align run
  // in-process on the same bytes.
  Xoshiro256 rng(917);
  MutationModel model;
  model.substitution_rate = 0.05;
  model.insertion_rate = 0;
  model.deletion_rate = 0;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 2000, model, rng);

  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  const Response up_a = client.upload_sequence(pair.a.to_string(), options);
  const Response up_b = client.upload_sequence(pair.b.to_string(), options);
  const auto* ok_a = std::get_if<SeqOkResponse>(&up_a);
  const auto* ok_b = std::get_if<SeqOkResponse>(&up_b);
  ASSERT_NE(ok_a, nullptr);
  ASSERT_NE(ok_b, nullptr);

  AlignRefRequest request;
  request.ref_a = ok_a->ref_id;
  request.ref_b = ok_b->ref_id;
  request.matrix = WireMatrix::kDna;
  request.gap_open = 0;  // banded mode is linear-gap only
  request.gap_extend = -4;
  request.band = 32;
  const Response streamed = client.call(request);
  const auto* part = std::get_if<AlignPartResponse>(&streamed);
  ASSERT_NE(part, nullptr);

  const Alignment expected =
      banded_align(pair.a, pair.b, ScoringScheme(scoring::dna(), -4), 32);
  EXPECT_EQ(part->score, expected.score);
  EXPECT_EQ(part->cigar_part, expected.cigar());
  server.stop();
}

TEST(Service, BandedAlignRefRejectsBadGeometryAndAffineGaps) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(918);
  const std::string letters =
      random_sequence(Alphabet::dna(), 300, rng).to_string();
  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  const Response uploaded = client.upload_sequence(letters, options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);

  // Band half-width 5 cannot cover a 200-residue length difference.
  AlignRefRequest narrow;
  narrow.ref_a = ok->ref_id;
  narrow.matrix = WireMatrix::kDna;
  narrow.gap_open = 0;
  narrow.band = 5;
  narrow.b = letters.substr(0, 100);
  const Response rejected = client.call(narrow);
  const auto* geometry_error = std::get_if<ErrorResponse>(&rejected);
  ASSERT_NE(geometry_error, nullptr);
  EXPECT_EQ(geometry_error->code, ErrorCode::kBadRequest);

  // Affine gaps under a band are not supported: typed refusal.
  AlignRefRequest affine;
  affine.ref_a = ok->ref_id;
  affine.matrix = WireMatrix::kDna;
  affine.gap_open = -11;
  affine.band = 64;
  affine.b = letters;
  const Response refused = client.call(affine);
  const auto* affine_error = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(affine_error, nullptr);
  EXPECT_EQ(affine_error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, OversizedUploadAnswersTooLarge) {
  ServiceConfig config;
  config.max_store_residues = 100;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // Declared over the cap: refused at SEQ_BEGIN, before any bytes move.
  SeqBeginRequest declared;
  declared.upload_token = 80;
  declared.matrix = WireMatrix::kDna;
  declared.total_residues = 200;
  const Response refused = client.call(declared);
  const auto* declare_error = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(declare_error, nullptr);
  EXPECT_EQ(declare_error->code, ErrorCode::kTooLarge);

  // Undeclared totals are caught at the chunk that crosses the cap.
  SeqBeginRequest open_ended;
  open_ended.upload_token = 81;
  open_ended.matrix = WireMatrix::kDna;
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(open_ended)));
  SeqChunkRequest chunk;
  chunk.upload_token = 81;
  chunk.data = std::string(150, 'A');
  const Response overflow = client.call(chunk);
  const auto* overflow_error = std::get_if<ErrorResponse>(&overflow);
  ASSERT_NE(overflow_error, nullptr);
  EXPECT_EQ(overflow_error->code, ErrorCode::kTooLarge);
  server.stop();
}

TEST(Service, UploadForeignCharactersAbortTheSession) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  SeqBeginRequest begin;
  begin.upload_token = 82;
  begin.matrix = WireMatrix::kDna;
  ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(client.call(begin)));
  SeqChunkRequest chunk;
  chunk.upload_token = 82;
  chunk.data = "ACGTXXGT";
  const Response rejected = client.call(chunk);
  const auto* error = std::get_if<ErrorResponse>(&rejected);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  // Session aborted: the next BEGIN starts from zero.
  const Response reopened = client.call(begin);
  const auto* fresh = std::get_if<SeqOkResponse>(&reopened);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->next_offset, 0u);
  server.stop();
}

TEST(Service, StreamingStatsCountersAdvance) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  Xoshiro256 rng(919);
  const std::string letters =
      random_sequence(Alphabet::dna(), 400, rng).to_string();
  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.chunk_residues = 128;
  const Response uploaded = client.upload_sequence(letters, options);
  const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(ok, nullptr);
  AlignRefRequest request;
  request.ref_a = ok->ref_id;
  request.matrix = WireMatrix::kDna;
  request.b = letters;
  request.score_only = true;
  ASSERT_TRUE(
      std::holds_alternative<AlignPartResponse>(client.call(request)));

  const Response stats_response = client.call(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&stats_response);
  ASSERT_NE(stats, nullptr);
  auto value = [&](const std::string& name) -> double {
    for (const auto& [key, entry] : stats->entries) {
      if (key == name) return entry;
    }
    return -1.0;
  };
  EXPECT_GE(value("stream.uploads"), 1.0);
  EXPECT_GE(value("stream.upload_chunks"), 4.0);  // 400 letters / 128
  EXPECT_GE(value("stream.upload_bytes"), 400.0);
  EXPECT_GE(value("stream.uploads_sealed"), 1.0);
  EXPECT_GE(value("stream.align_ref"), 1.0);
  EXPECT_GE(value("stream.parts"), 1.0);
  server.stop();
}

// ---- ALIGN_BATCH ------------------------------------------------------

TEST(Service, AlignBatchExecutesEveryJobAndDemuxesById) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  AlignBatchRequest batch;
  AlignRequest good = protein_request("TLDKLLKD", "TDVLKAD");
  good.request_id = 11;
  batch.jobs.push_back(good);
  AlignRequest bad = protein_request("TLDK1LKD", "TDVLKAD");  // bad residue
  bad.request_id = 22;
  batch.jobs.push_back(bad);
  AlignRequest second_good = protein_request("HEAGAWGHEE", "PAWHEAE");
  second_good.request_id = 33;
  batch.jobs.push_back(second_good);

  const Response response = client.call(std::move(batch));
  const auto* out = std::get_if<AlignBatchResponse>(&response);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->items.size(), 3u);

  const auto* first = std::get_if<AlignResponse>(&out->items[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->request_id, 11u);
  EXPECT_EQ(first->score, 82);
  EXPECT_EQ(first->cigar, direct_align("TLDKLLKD", "TDVLKAD").cigar());

  // One bad job must not poison its batch mates — it answers a per-job
  // typed error in its slot.
  const auto* middle = std::get_if<ErrorResponse>(&out->items[1]);
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(middle->request_id, 22u);
  EXPECT_EQ(middle->code, ErrorCode::kBadRequest);

  const auto* last = std::get_if<AlignResponse>(&out->items[2]);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->request_id, 33u);
  EXPECT_EQ(last->score, direct_align("HEAGAWGHEE", "PAWHEAE").score);
  server.stop();
}

TEST(Service, EmptyAlignBatchAnswersBadRequest) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response = client.call(AlignBatchRequest{});
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kBadRequest);
  server.stop();
}

TEST(Service, StatsReportsLoadGaugesAndUptime) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const Response response = client.call(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&response);
  ASSERT_NE(stats, nullptr);
  double queue_depth = -1.0, in_flight = -1.0, uptime = -1.0;
  for (const auto& [name, value] : stats->entries) {
    if (name == "service.queue_depth") queue_depth = value;
    if (name == "service.in_flight") in_flight = value;
    if (name == "service.uptime_ms") uptime = value;
  }
  // The load gauges a router's least-loaded routing feeds on must always
  // be present (zero on an idle server), alongside a monotonic uptime.
  EXPECT_EQ(queue_depth, 0.0);
  EXPECT_EQ(in_flight, 0.0);
  EXPECT_GE(uptime, 0.0);
  server.stop();
}

// ---- Endpoint lists ---------------------------------------------------

TEST(Client, ConnectSkipsDeadEndpointsInOrder) {
  AlignmentServer server;
  server.start();
  // A TCP port nothing listens on: bind-then-close reserves a number
  // that connect() will refuse.
  AlignmentServer parked;
  parked.start();
  const std::uint16_t dead_port = parked.port();
  parked.stop();

  Client client;
  client.connect({{"127.0.0.1", dead_port}, {"127.0.0.1", server.port()}});
  EXPECT_EQ(client.current_endpoint().port, server.port());
  const Response response = client.call(protein_request("A", "A"));
  EXPECT_TRUE(std::holds_alternative<AlignResponse>(response));
  server.stop();
}

TEST(Client, ConnectThrowsWhenEveryEndpointIsDead) {
  AlignmentServer parked;
  parked.start();
  const std::uint16_t dead = parked.port();
  parked.stop();
  Client client;
  EXPECT_THROW(client.connect({{"127.0.0.1", dead}, {"127.0.0.1", dead}}),
               TransportError);
}

TEST(Client, RetryFailsOverToTheNextEndpoint) {
  AlignmentServer first;
  first.start();
  AlignmentServer second;
  second.start();

  Client client;
  client.connect(
      {{"127.0.0.1", first.port()}, {"127.0.0.1", second.port()}});
  ASSERT_EQ(client.current_endpoint().port, first.port());

  // Kill the connected endpoint mid-session: the next call sees a
  // transport failure, and the retry loop must rotate to the survivor
  // instead of re-dialling the corpse.
  first.stop();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay = std::chrono::milliseconds(1);
  const Response response =
      client.call_with_retry(protein_request("TLDKLLKD", "TDVLKAD"), policy);
  const auto* ok = std::get_if<AlignResponse>(&response);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->score, 82);
  EXPECT_EQ(client.current_endpoint().port, second.port());
  second.stop();
}

TEST(Service, StartAfterStopServesAgain) {
  ServiceConfig config;
  AlignmentServer first(config);
  first.start();
  const std::uint16_t port = first.port();
  first.stop();

  // A fresh server can rebind the same port immediately (SO_REUSEADDR).
  config.port = port;
  AlignmentServer second(config);
  second.start();
  Client client;
  client.connect("127.0.0.1", second.port());
  const Response response = client.call(protein_request("A", "A"));
  EXPECT_TRUE(std::holds_alternative<AlignResponse>(response));
  second.stop();
}

// ---- Durable handle registry: restart recovery -----------------------

// Fresh persistent store directory (the server must NOT own/remove it —
// the whole point is surviving the process).
std::string make_store_dir(const std::string& tag) {
  std::string path = testing::TempDir() + "flsa_recovery_" + tag + "_XXXXXX";
  EXPECT_NE(::mkdtemp(path.data()), nullptr);
  return path;
}

void remove_ref_payloads(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string file = entry->d_name;
    if (file.rfind("ref_", 0) == 0) victims.push_back(dir + "/" + file);
  }
  ::closedir(d);
  ASSERT_FALSE(victims.empty());
  for (const std::string& victim : victims) ::unlink(victim.c_str());
}

TEST(Service, SealedHandlesSurviveARestartBitIdentically) {
  // The tentpole guarantee: seal handles against a persistent store
  // directory, restart the server over the same directory, and the same
  // ids must answer ALIGN_REF and SEARCH bit-identically — including a
  // SEARCH index that was never persisted and must rebuild lazily.
  const std::string dir = make_store_dir("survive");
  Xoshiro256 rng(920);
  MutationModel model;
  model.substitution_rate = 0.05;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 1200, model, rng);
  const Sequence gene = random_sequence(Alphabet::dna(), 120, rng);
  const std::string reference =
      random_sequence(Alphabet::dna(), 600, rng).to_string() +
      gene.to_string() +
      random_sequence(Alphabet::dna(), 300, rng).to_string();

  ServiceConfig config;
  config.store_dir = dir;
  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  std::uint64_t id_ref = 0;
  std::int64_t score_before = 0;
  std::string cigar_before;
  std::vector<std::uint64_t> hit_begins_before;
  {
    AlignmentServer server(config);
    server.start();
    Client client;
    client.connect("127.0.0.1", server.port());

    Client::UploadOptions options;
    options.matrix = WireMatrix::kDna;
    options.name = "a";
    const Response up_a = client.upload_sequence(pair.a.to_string(), options);
    const auto* ok_a = std::get_if<SeqOkResponse>(&up_a);
    ASSERT_NE(ok_a, nullptr);
    id_a = ok_a->ref_id;
    options.name = "b";
    const Response up_b = client.upload_sequence(pair.b.to_string(), options);
    const auto* ok_b = std::get_if<SeqOkResponse>(&up_b);
    ASSERT_NE(ok_b, nullptr);
    id_b = ok_b->ref_id;
    options.name = "searchable";
    options.build_index = true;
    const Response up_ref = client.upload_sequence(reference, options);
    const auto* ok_ref = std::get_if<SeqOkResponse>(&up_ref);
    ASSERT_NE(ok_ref, nullptr);
    id_ref = ok_ref->ref_id;

    AlignRefRequest by_handle;
    by_handle.ref_a = id_a;
    by_handle.ref_b = id_b;
    by_handle.matrix = WireMatrix::kDna;
    const Response aligned = client.call(by_handle);
    const auto* part = std::get_if<AlignPartResponse>(&aligned);
    ASSERT_NE(part, nullptr);
    score_before = part->score;
    cigar_before = part->cigar_part;

    SearchRequest search;
    search.ref_id = id_ref;
    search.matrix = WireMatrix::kDna;
    search.query = gene.to_string();
    const Response found = client.call(std::move(search));
    const auto* hits = std::get_if<SearchResponse>(&found);
    ASSERT_NE(hits, nullptr);
    ASSERT_FALSE(hits->hits.empty());
    for (const auto& hit : hits->hits) hit_begins_before.push_back(hit.s_begin);
    server.stop();
  }

  AlignmentServer restarted(config);
  restarted.start();
  EXPECT_EQ(restarted.recovery().recovered, 3u);
  EXPECT_EQ(restarted.recovery().skipped, 0u);
  Client client;
  client.connect("127.0.0.1", restarted.port());

  // REF_LIST must enumerate the recovered handles with their metadata.
  const Response listed = client.call(RefListRequest{});
  const auto* list = std::get_if<RefListResponse>(&listed);
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->refs.size(), 3u);
  EXPECT_EQ(list->refs[0].ref_id, id_a);
  EXPECT_EQ(list->refs[0].name, "a");
  EXPECT_EQ(list->refs[0].residues, pair.a.size());
  EXPECT_FALSE(list->refs[0].indexed);
  EXPECT_EQ(list->refs[2].ref_id, id_ref);
  EXPECT_TRUE(list->refs[2].indexed);

  AlignRefRequest by_handle;
  by_handle.ref_a = id_a;
  by_handle.ref_b = id_b;
  by_handle.matrix = WireMatrix::kDna;
  const Response aligned = client.call(by_handle);
  const auto* part = std::get_if<AlignPartResponse>(&aligned);
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->score, score_before);
  EXPECT_EQ(part->cigar_part, cigar_before);

  // The recovered handle has no in-memory index; the first SEARCH must
  // rebuild it from the mmap'd store and answer identically.
  SearchRequest search;
  search.ref_id = id_ref;
  search.matrix = WireMatrix::kDna;
  search.query = gene.to_string();
  const Response found = client.call(std::move(search));
  const auto* hits = std::get_if<SearchResponse>(&found);
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->hits.size(), hit_begins_before.size());
  for (std::size_t i = 0; i < hits->hits.size(); ++i) {
    EXPECT_EQ(hits->hits[i].s_begin, hit_begins_before[i]);
  }
  restarted.stop();
}

TEST(Service, RestartDoesNotReissueRecoveredHandleIds) {
  // The restart-collision bug: a fresh server that restarts its id
  // counter at 1 would hand a new upload an id that already names a
  // recovered handle. The manifest owns the id space across restarts.
  const std::string dir = make_store_dir("collision");
  Xoshiro256 rng(921);
  const std::string before_letters =
      random_sequence(Alphabet::dna(), 400, rng).to_string();
  const std::string after_letters =
      random_sequence(Alphabet::dna(), 300, rng).to_string();

  ServiceConfig config;
  config.store_dir = dir;
  std::uint64_t recovered_id = 0;
  {
    AlignmentServer server(config);
    server.start();
    Client client;
    client.connect("127.0.0.1", server.port());
    Client::UploadOptions options;
    options.matrix = WireMatrix::kDna;
    const Response uploaded =
        client.upload_sequence(before_letters, options);
    const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
    ASSERT_NE(ok, nullptr);
    recovered_id = ok->ref_id;
    server.stop();
  }

  AlignmentServer restarted(config);
  restarted.start();
  Client client;
  client.connect("127.0.0.1", restarted.port());
  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  const Response uploaded = client.upload_sequence(after_letters, options);
  const auto* fresh = std::get_if<SeqOkResponse>(&uploaded);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh->ref_id, recovered_id);

  // Both handles must answer with their own sequence, not each other's.
  AlignRefRequest old_self;
  old_self.ref_a = recovered_id;
  old_self.matrix = WireMatrix::kDna;
  old_self.b = before_letters;
  old_self.score_only = true;
  const Response old_answer = client.call(old_self);
  ASSERT_TRUE(std::holds_alternative<AlignPartResponse>(old_answer));

  AlignRefRequest new_self;
  new_self.ref_a = fresh->ref_id;
  new_self.matrix = WireMatrix::kDna;
  new_self.b = after_letters;
  new_self.score_only = true;
  const Response new_answer = client.call(new_self);
  ASSERT_TRUE(std::holds_alternative<AlignPartResponse>(new_answer));
  restarted.stop();
}

TEST(Service, MissingPayloadIsSkippedWithAWarningNotAFailedBoot) {
  // Manifest says a handle exists but its payload file is gone (disk
  // damage between restarts). Boot must succeed, count the skip, and
  // answer REF_NOT_FOUND for the dead id — never crash or serve junk.
  const std::string dir = make_store_dir("payload");
  Xoshiro256 rng(922);
  const std::string letters =
      random_sequence(Alphabet::dna(), 350, rng).to_string();

  ServiceConfig config;
  config.store_dir = dir;
  std::uint64_t dead_id = 0;
  {
    AlignmentServer server(config);
    server.start();
    Client client;
    client.connect("127.0.0.1", server.port());
    Client::UploadOptions options;
    options.matrix = WireMatrix::kDna;
    const Response uploaded = client.upload_sequence(letters, options);
    const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
    ASSERT_NE(ok, nullptr);
    dead_id = ok->ref_id;
    server.stop();
  }
  remove_ref_payloads(dir);

  AlignmentServer restarted(config);
  restarted.start();
  EXPECT_EQ(restarted.recovery().recovered, 0u);
  EXPECT_EQ(restarted.recovery().skipped, 1u);
  EXPECT_FALSE(restarted.recovery().warnings.empty());

  Client client;
  client.connect("127.0.0.1", restarted.port());
  AlignRefRequest request;
  request.ref_a = dead_id;
  request.matrix = WireMatrix::kDna;
  request.b = letters;
  const Response answered = client.call(request);
  const auto* error = std::get_if<ErrorResponse>(&answered);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kRefNotFound);
  restarted.stop();
}

TEST(Service, TwoHundredHandleReplayIsBitIdentical) {
  // Volume leg of the recovery matrix: seal 200 small handles, restart,
  // and every recovered handle must score a fixed probe exactly as it
  // did before the restart (distinct sequences give distinct scores, so
  // a shuffled or cross-wired recovery cannot pass).
  const std::string dir = make_store_dir("volume");
  constexpr std::size_t kHandles = 200;
  Xoshiro256 rng(923);
  const std::string probe =
      random_sequence(Alphabet::dna(), 48, rng).to_string();
  std::vector<std::string> sequences;
  for (std::size_t i = 0; i < kHandles; ++i) {
    sequences.push_back(
        random_sequence(Alphabet::dna(), 32 + (i % 64), rng).to_string());
  }

  ServiceConfig config;
  config.store_dir = dir;
  std::vector<std::uint64_t> ids(kHandles, 0);
  std::vector<std::int64_t> scores(kHandles, 0);
  {
    AlignmentServer server(config);
    server.start();
    Client client;
    client.connect("127.0.0.1", server.port());
    Client::UploadOptions options;
    options.matrix = WireMatrix::kDna;
    for (std::size_t i = 0; i < kHandles; ++i) {
      const Response uploaded =
          client.upload_sequence(sequences[i], options);
      const auto* ok = std::get_if<SeqOkResponse>(&uploaded);
      ASSERT_NE(ok, nullptr) << "upload " << i;
      ids[i] = ok->ref_id;
      AlignRefRequest request;
      request.ref_a = ids[i];
      request.matrix = WireMatrix::kDna;
      request.b = probe;
      request.score_only = true;
      const Response aligned = client.call(request);
      const auto* part = std::get_if<AlignPartResponse>(&aligned);
      ASSERT_NE(part, nullptr) << "pre-restart align " << i;
      scores[i] = part->score;
    }
    server.stop();
  }

  AlignmentServer restarted(config);
  restarted.start();
  ASSERT_EQ(restarted.recovery().recovered, kHandles);
  Client client;
  client.connect("127.0.0.1", restarted.port());
  const Response listed = client.call(RefListRequest{});
  const auto* list = std::get_if<RefListResponse>(&listed);
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->refs.size(), kHandles);
  for (std::size_t i = 0; i < kHandles; ++i) {
    AlignRefRequest request;
    request.ref_a = ids[i];
    request.matrix = WireMatrix::kDna;
    request.b = probe;
    request.score_only = true;
    const Response aligned = client.call(request);
    const auto* part = std::get_if<AlignPartResponse>(&aligned);
    ASSERT_NE(part, nullptr) << "post-restart align " << i;
    EXPECT_EQ(part->score, scores[i]) << "handle " << ids[i];
  }
  restarted.stop();
}

TEST(Service, IdleUploadSessionsAreReapedAndTheCapRecovers) {
  // The session-leak fix: two abandoned uploads pin a cap of two until
  // the hygiene timer reaps them; a third SEQ_BEGIN must go from
  // OVERLOADED to accepted without any client cooperation.
  ServiceConfig config;
  config.max_uploads_in_flight = 2;
  config.upload_idle_timeout_ms = 50;
  AlignmentServer server(config);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  for (std::uint64_t token = 1; token <= 2; ++token) {
    SeqBeginRequest begin;
    begin.upload_token = token;
    begin.matrix = WireMatrix::kDna;
    const Response opened = client.call(begin);
    ASSERT_TRUE(std::holds_alternative<SeqOkResponse>(opened))
        << "session " << token;
  }

  SeqBeginRequest third;
  third.upload_token = 3;
  third.matrix = WireMatrix::kDna;
  const Response refused = client.call(third);
  const auto* error = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, ErrorCode::kOverloaded);

  // Poll rather than sleep a fixed amount: under TSan the reaper tick
  // can land well past 50 ms.
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const Response retried = client.call(third);
    admitted = std::holds_alternative<SeqOkResponse>(retried);
  }
  EXPECT_TRUE(admitted) << "idle sessions were never reaped";
  server.stop();
}

TEST(Service, RefListEnumeratesLiveHandlesInOrder) {
  AlignmentServer server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // Empty registry answers an empty (not error) list.
  const Response none = client.call(RefListRequest{});
  const auto* empty = std::get_if<RefListResponse>(&none);
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->refs.empty());

  Xoshiro256 rng(924);
  Client::UploadOptions options;
  options.matrix = WireMatrix::kDna;
  options.name = "plain";
  const Response up_plain = client.upload_sequence(
      random_sequence(Alphabet::dna(), 200, rng).to_string(), options);
  const auto* plain = std::get_if<SeqOkResponse>(&up_plain);
  ASSERT_NE(plain, nullptr);
  options.name = "indexed";
  options.build_index = true;
  options.k = 11;
  const Response up_indexed = client.upload_sequence(
      random_sequence(Alphabet::dna(), 300, rng).to_string(), options);
  const auto* indexed = std::get_if<SeqOkResponse>(&up_indexed);
  ASSERT_NE(indexed, nullptr);

  const Response listed = client.call(RefListRequest{});
  const auto* list = std::get_if<RefListResponse>(&listed);
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->refs.size(), 2u);
  EXPECT_EQ(list->refs[0].ref_id, plain->ref_id);
  EXPECT_EQ(list->refs[0].name, "plain");
  EXPECT_EQ(list->refs[0].residues, 200u);
  EXPECT_EQ(list->refs[0].matrix, WireMatrix::kDna);
  EXPECT_FALSE(list->refs[0].indexed);
  EXPECT_EQ(list->refs[0].k, 0u);
  EXPECT_EQ(list->refs[1].ref_id, indexed->ref_id);
  EXPECT_EQ(list->refs[1].name, "indexed");
  EXPECT_TRUE(list->refs[1].indexed);
  EXPECT_EQ(list->refs[1].k, 11u);
  EXPECT_NE(list->refs[1].content_token, 0u);
  server.stop();
}

}  // namespace
}  // namespace service
}  // namespace flsa
