// Tests for the colinear chainer and the chained (seed-chain-extend)
// search pipeline: anchor collection/merging, sweep-line chaining edge
// cases, and end-to-end hits validated against full Smith-Waterman.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "search/chain.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

search::Anchor make_anchor(std::size_t q_begin, std::size_t s_begin,
                           std::size_t length, Score score) {
  search::Anchor a;
  a.q_begin = q_begin;
  a.q_end = q_begin + length;
  a.s_begin = s_begin;
  a.s_end = s_begin + length;
  a.score = score;
  return a;
}

TEST(CollectAnchors, MergesAdjacentSeedsIntoOneMaximalRun) {
  Xoshiro256 rng(301);
  const Sequence gene = random_sequence(Alphabet::dna(), 60, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 300, rng).to_string() +
          gene.to_string() +
          random_sequence(Alphabet::dna(), 200, rng).to_string());
  const search::ReferenceIndex index(subject, 8);
  const auto anchors = search::collect_anchors(gene, index, scheme());
  // The exact 60-residue copy yields 53 overlapping 8-mers on one
  // diagonal; merging must collapse them into a single maximal anchor.
  const auto planted = std::find_if(
      anchors.begin(), anchors.end(), [](const search::Anchor& a) {
        return a.q_begin == 0 && a.length() == 60;
      });
  ASSERT_NE(planted, anchors.end());
  EXPECT_EQ(planted->s_begin, 300u);
  EXPECT_EQ(planted->s_end, 360u);
  EXPECT_EQ(planted->score, 60 * 5);  // exact run scored on the diagonal
  // Output order contract: sorted by q_begin.
  EXPECT_TRUE(std::is_sorted(anchors.begin(), anchors.end(),
                             [](const auto& x, const auto& y) {
                               return x.q_begin < y.q_begin;
                             }));
}

TEST(CollectAnchors, RepeatMaskDropsHighFrequencyKmers) {
  // A subject that is one 8-mer repeated: every query k-mer occurs far
  // more often than the mask allows, so no anchors survive.
  std::string repeat;
  for (int i = 0; i < 100; ++i) repeat += "ACGTACGT";
  const Sequence subject(Alphabet::dna(), repeat);
  const Sequence query(Alphabet::dna(), "ACGTACGTACGTACGT");
  const search::ReferenceIndex index(subject, 8);
  EXPECT_TRUE(search::collect_anchors(query, index, scheme(),
                                      /*max_positions_per_kmer=*/4)
                  .empty());
  EXPECT_FALSE(search::collect_anchors(query, index, scheme(),
                                       /*max_positions_per_kmer=*/0)
                   .empty());  // 0 = unlimited
}

TEST(ChainAnchors, EmptyInputYieldsNoChains) {
  EXPECT_TRUE(search::chain_anchors({}, search::ChainParams{}).empty());
}

TEST(ChainAnchors, SingleAnchorAboveFloorIsItsOwnChain) {
  const std::vector<search::Anchor> anchors = {make_anchor(0, 100, 20, 100)};
  search::ChainParams params;
  params.min_chain_score = 30;
  const auto chains = search::chain_anchors(anchors, params);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchors, (std::vector<std::size_t>{0}));
  EXPECT_EQ(chains[0].score, 100);
  // Below the floor it is filtered.
  params.min_chain_score = 101;
  EXPECT_TRUE(search::chain_anchors(anchors, params).empty());
}

TEST(ChainAnchors, JoinsColinearAnchorsAndChargesL1GapCost) {
  // Two colinear anchors: query gap 10, subject gap 14.
  const std::vector<search::Anchor> anchors = {
      make_anchor(0, 100, 20, 100), make_anchor(30, 134, 20, 100)};
  search::ChainParams params;
  params.gap_weight = 2;
  params.min_chain_score = 1;
  const auto chains = search::chain_anchors(anchors, params);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchors, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(chains[0].score, 100 + 100 - 2 * (10 + 14));
}

TEST(ChainAnchors, CrossingAnchorsAreNotChainedTogether) {
  // Second anchor precedes the first in subject coordinates — chaining
  // them would require the alignment to go backwards. They must surface
  // as two independent chains instead.
  const std::vector<search::Anchor> anchors = {
      make_anchor(0, 500, 20, 100), make_anchor(40, 100, 20, 100)};
  search::ChainParams params;
  params.min_chain_score = 1;
  const auto chains = search::chain_anchors(anchors, params);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].anchors.size(), 1u);
  EXPECT_EQ(chains[1].anchors.size(), 1u);
}

TEST(ChainAnchors, PicksTheCheaperPredecessorNotTheNearest) {
  // Anchor 2 can chain off anchor 0 (big gap) or anchor 1 (small gap,
  // small score). The sweep must keep both candidates on the frontier
  // and pick the better total.
  const std::vector<search::Anchor> anchors = {
      make_anchor(0, 0, 20, 100),      // strong, gap to #2: 30+30
      make_anchor(25, 1000, 20, 10),   // weak, gap to #2 impossible (s)
      make_anchor(50, 50, 20, 100)};   // chains off #0
  search::ChainParams params;
  params.gap_weight = 1;
  params.min_chain_score = 1;
  const auto chains = search::chain_anchors(anchors, params);
  ASSERT_FALSE(chains.empty());
  EXPECT_EQ(chains[0].anchors, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(chains[0].score, 100 + 100 - (30 + 30));
}

TEST(ChainAnchors, OverlappingAnchorsChainWithinTolerance) {
  // Anchors overlapping by 5 residues in both coordinates: chained when
  // max_overlap >= 5, split when the tolerance is lower.
  const std::vector<search::Anchor> anchors = {
      make_anchor(0, 100, 20, 100), make_anchor(15, 115, 20, 100)};
  search::ChainParams tolerant;
  tolerant.max_overlap = 5;
  tolerant.min_chain_score = 1;
  const auto joined = search::chain_anchors(anchors, tolerant);
  ASSERT_FALSE(joined.empty());
  EXPECT_EQ(joined[0].anchors.size(), 2u);
  search::ChainParams strict;
  strict.max_overlap = 2;
  strict.min_chain_score = 1;
  const auto split = search::chain_anchors(anchors, strict);
  ASSERT_FALSE(split.empty());
  EXPECT_EQ(split[0].anchors.size(), 1u);
}

TEST(ChainAnchors, RejectsAnchorsNotLongerThanTheOverlapTolerance) {
  const std::vector<search::Anchor> anchors = {make_anchor(0, 0, 8, 40)};
  search::ChainParams params;
  params.max_overlap = 8;  // anchor length == tolerance: degenerate
  EXPECT_THROW(search::chain_anchors(anchors, params),
               std::invalid_argument);
}

TEST(ChainedSearch, FindsPlantedGeneThroughSubstitutionsAndIndels) {
  Xoshiro256 rng(302);
  const Sequence gene = random_sequence(Alphabet::dna(), 200, rng);
  MutationModel model;
  model.substitution_rate = 0.05;
  model.insertion_rate = 0.01;
  model.deletion_rate = 0.01;
  const Sequence mutated = mutate(gene, model, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 3000, rng).to_string() +
          mutated.to_string() +
          random_sequence(Alphabet::dna(), 2000, rng).to_string());
  const search::ReferenceIndex index(subject, 12);
  search::ChainedSearchStats stats;
  const auto hits =
      search::chained_search(gene, index, scheme(), {}, &stats);
  ASSERT_FALSE(hits.empty());
  const Alignment& best = hits[0].alignment;
  EXPECT_GE(best.b_end, 3000u);
  EXPECT_LE(best.b_begin, 3000u + mutated.size());
  EXPECT_GT(best.score, 600);
  EXPECT_GT(best.identity(), 0.85);
  // The reported score is self-consistent with the emitted gapped rows.
  EXPECT_EQ(best.score,
            score_alignment(best, scheme(), Alphabet::dna()));
  EXPECT_GT(stats.anchors, 0u);
  EXPECT_GT(stats.chains, 0u);
  EXPECT_GE(stats.filled, stats.chains == 0 ? 0u : 1u);
}

TEST(ChainedSearch, ExactCopyScoresAsFullSmithWaterman) {
  Xoshiro256 rng(303);
  const Sequence gene = random_sequence(Alphabet::dna(), 150, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 1000, rng).to_string() +
          gene.to_string() +
          random_sequence(Alphabet::dna(), 800, rng).to_string());
  const search::ReferenceIndex index(subject, 12);
  const auto hits = search::chained_search(gene, index, scheme());
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].alignment.score,
            local_align_full_matrix(gene, subject, scheme()).score);
  EXPECT_EQ(hits[0].alignment.score, 150 * 5);
}

TEST(ChainedSearch, HitsAreSortedAndDisjointInTheReference) {
  Xoshiro256 rng(304);
  const Sequence motif = random_sequence(Alphabet::dna(), 90, rng);
  MutationModel model;
  model.substitution_rate = 0.06;
  model.insertion_rate = 0.0;
  model.deletion_rate = 0.0;
  std::string subject_text;
  for (int copy = 0; copy < 4; ++copy) {
    subject_text += random_sequence(Alphabet::dna(), 600, rng).to_string();
    subject_text += mutate(motif, model, rng).to_string();
  }
  const Sequence subject(Alphabet::dna(), subject_text);
  const search::ReferenceIndex index(subject, 12);
  const auto hits = search::chained_search(motif, index, scheme());
  ASSERT_GE(hits.size(), 2u);
  for (std::size_t i = 0; i + 1 < hits.size(); ++i) {
    EXPECT_GE(hits[i].alignment.score, hits[i + 1].alignment.score);
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    for (std::size_t j = i + 1; j < hits.size(); ++j) {
      const Alignment& a = hits[i].alignment;
      const Alignment& b = hits[j].alignment;
      EXPECT_TRUE(a.b_end <= b.b_begin || b.b_end <= a.b_begin)
          << "hits " << i << " and " << j << " overlap in the reference";
    }
  }
}

TEST(ChainedSearch, PropertyScoresAreSelfConsistentAndBoundedBySw) {
  // Fixed-seed property sweep: chained hits never beat the Smith-
  // Waterman optimum (they are local alignments of the same pair) and
  // always reproduce their own score from the emitted gapped rows.
  Xoshiro256 rng(305);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const Sequence gene =
        random_sequence(Alphabet::dna(), 80 + 10 * trial, rng);
    MutationModel model;
    model.substitution_rate = 0.04 + 0.01 * static_cast<double>(trial % 3);
    const Sequence mutated = mutate(gene, model, rng);
    const Sequence subject(
        Alphabet::dna(),
        random_sequence(Alphabet::dna(), 700, rng).to_string() +
            mutated.to_string() +
            random_sequence(Alphabet::dna(), 500, rng).to_string());
    const search::ReferenceIndex index(subject, 10);
    const auto hits = search::chained_search(gene, index, scheme());
    const Score optimum =
        local_align_full_matrix(gene, subject, scheme()).score;
    for (const auto& hit : hits) {
      EXPECT_LE(hit.alignment.score, optimum) << "trial " << trial;
      EXPECT_EQ(hit.alignment.score,
                score_alignment(hit.alignment, scheme(), Alphabet::dna()))
          << "trial " << trial;
    }
    if (!hits.empty()) {
      // The planted copy dominates: the top chained hit recovers at
      // least 90% of the unrestricted optimum.
      EXPECT_GE(hits[0].alignment.score, (optimum * 9) / 10)
          << "trial " << trial;
    }
  }
}

TEST(ChainedSearch, NoHitsInUnrelatedSequences) {
  Xoshiro256 rng(306);
  const Sequence query = random_sequence(Alphabet::dna(), 100, rng);
  const Sequence subject = random_sequence(Alphabet::dna(), 5000, rng);
  const search::ReferenceIndex index(subject, 13);  // chance match ~0
  EXPECT_TRUE(search::chained_search(query, index, scheme()).empty());
}

TEST(ChainedSearch, Validation) {
  const Sequence q(Alphabet::dna(), "ACGTACGTACGTACGT");
  const search::ReferenceIndex index(q, 8);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  EXPECT_THROW(search::chained_search(q, index, affine),
               std::invalid_argument);
  const Sequence protein(Alphabet::protein(), "ACDEFGHIKL");
  EXPECT_THROW(search::chained_search(protein, index, scheme()),
               std::invalid_argument);  // alphabet mismatch
}

TEST(ReferenceIndex, SharesSubjectOwnershipWithCallers) {
  std::shared_ptr<const search::ReferenceIndex> index;
  {
    auto subject = std::make_shared<const Sequence>(Alphabet::dna(),
                                                    "ACGTACGTAACGTTTT");
    index = std::make_shared<const search::ReferenceIndex>(subject, 4);
  }  // the caller's handle is gone; the index keeps the subject alive
  EXPECT_EQ(index->size(), 16u);
  EXPECT_EQ(index->subject().to_string(), "ACGTACGTAACGTTTT");
  const Sequence probe(Alphabet::dna(), "ACGT");
  EXPECT_FALSE(index->kmers().lookup(probe.residues()).empty());
}

}  // namespace
}  // namespace flsa
