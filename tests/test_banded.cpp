// Tests for the banded global aligner.
#include <gtest/gtest.h>

#include <limits>

#include "dp/banded.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(Banded, WideBandMatchesFullMatrix) {
  Xoshiro256 rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 1 + rng.bounded(40);
    const std::size_t n = 1 + rng.bounded(40);
    const Sequence a = random_sequence(Alphabet::dna(), m, rng);
    const Sequence b = random_sequence(Alphabet::dna(), n, rng);
    const std::size_t wide = std::max(m, n);
    EXPECT_EQ(banded_score(a, b, scheme(), wide),
              full_matrix_score(a, b, scheme()));
    const Alignment aln = banded_align(a, b, scheme(), wide);
    EXPECT_EQ(aln.score, full_matrix_score(a, b, scheme()));
    EXPECT_EQ(score_alignment(aln, scheme(), Alphabet::dna()), aln.score);
  }
}

TEST(Banded, ScoreMonotoneInBandWidth) {
  Xoshiro256 rng(62);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 100, model, rng);
  Score previous = kNegInf;
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u, 100u}) {
    const Score s = banded_score(pair.a, pair.b, scheme(), w);
    EXPECT_GE(s, previous) << "w=" << w;
    previous = s;
  }
  EXPECT_EQ(previous, full_matrix_score(pair.a, pair.b, scheme()));
}

TEST(Banded, HighIdentityPairConvergesWithNarrowBand) {
  Xoshiro256 rng(63);
  MutationModel model;
  model.substitution_rate = 0.02;
  model.insertion_rate = 0.002;
  model.deletion_rate = 0.002;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 300, model, rng);
  const Score exact = full_matrix_score(pair.a, pair.b, scheme());
  // A modest band already recovers the unconstrained optimum on a
  // high-identity pair.
  EXPECT_EQ(banded_score(pair.a, pair.b, scheme(), 24), exact);
}

TEST(Banded, BandReducesStoredCells) {
  Xoshiro256 rng(64);
  const Sequence a = random_sequence(Alphabet::dna(), 200, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 200, rng);
  DpCounters banded_counters, fm_counters;
  banded_score(a, b, scheme(), 10, &banded_counters);
  full_matrix_score(a, b, scheme(), &fm_counters);
  EXPECT_LT(banded_counters.cells_stored, fm_counters.cells_stored / 3);
}

TEST(Banded, EqualLengthIdenticalSequencesWithMinimalBand) {
  Xoshiro256 rng(65);
  const Sequence s = random_sequence(Alphabet::dna(), 50, rng);
  const Alignment aln = banded_align(s, s, scheme(), 1);
  EXPECT_EQ(aln.score, 250);
  EXPECT_EQ(aln.gap_count(), 0u);
}

TEST(Banded, LengthMismatchStillReachesCorner) {
  const Sequence a(Alphabet::dna(), "ACGT");
  const Sequence b(Alphabet::dna(), "ACGTACGTACGT");
  // Band geometry always contains both corners, whatever the half-width.
  const Alignment aln = banded_align(a, b, scheme(), 1);
  EXPECT_EQ(score_alignment(aln, scheme(), Alphabet::dna()), aln.score);
  std::size_t b_res = 0;
  for (char c : aln.gapped_b) b_res += (c != '-');
  EXPECT_EQ(b_res, b.size());
}

TEST(Banded, RejectsBadParameters) {
  const Sequence a(Alphabet::dna(), "ACG");
  EXPECT_THROW(banded_align(a, a, scheme(), 0), std::invalid_argument);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  EXPECT_THROW(banded_align(a, a, affine, 2), std::invalid_argument);
}

TEST(Banded, DpCountersSaturateInsteadOfWrapping) {
  // Counter merges across workers sum (m+1)*(n+1)-flavoured quantities;
  // at the 64-bit boundary they must pin, not wrap to a small lie.
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  DpCounters a;
  a.cells_scored = max64 - 10;
  a.cells_stored = 100;
  EXPECT_EQ(a.total_cells(), max64);

  DpCounters b;
  b.cells_scored = max64 - 1;
  b.traceback_steps = max64;
  a += b;
  EXPECT_EQ(a.cells_scored, max64);
  EXPECT_EQ(a.cells_stored, 100u);
  EXPECT_EQ(a.traceback_steps, max64);
  EXPECT_EQ(a.total_cells(), max64);

  DpCounters small;
  small.cells_scored = 3;
  small.cells_stored = 4;
  EXPECT_EQ(small.total_cells(), 7u);  // ordinary sums stay exact
}

}  // namespace
}  // namespace flsa
