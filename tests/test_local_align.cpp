// Tests for the linear-space local aligner (forward pass + anchored
// reverse pass + FastLSA on the located rectangle).
#include <gtest/gtest.h>

#include "core/local_align.hpp"
#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(LocalAlign, ScoreMatchesFullMatrixSmithWaterman) {
  Xoshiro256 rng(131);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(80), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(80), rng);
    const Alignment linear_space = local_align(a, b, scheme());
    const Alignment full = local_align_full_matrix(a, b, scheme());
    EXPECT_EQ(linear_space.score, full.score);
  }
}

TEST(LocalAlign, RecoversEmbeddedMotif) {
  const Sequence a(Alphabet::dna(), "TTTTTTACGTACGTACGTTTTTTT");
  const Sequence b(Alphabet::dna(), "GGGGACGTACGTACGGGGG");
  const Alignment aln = local_align(a, b, scheme());
  EXPECT_EQ(aln.score, 55);  // the shared 11-mer ACGTACGTACG at +5 each
  const Alignment full = local_align_full_matrix(a, b, scheme());
  EXPECT_EQ(aln.score, full.score);
  EXPECT_EQ(score_alignment(aln, scheme(), Alphabet::dna()), aln.score);
}

TEST(LocalAlign, EmptyWhenNothingScoresPositive) {
  const SubstitutionMatrix m = scoring::dna(-1, -5);
  const ScoringScheme negative(m, -6);
  const Sequence a(Alphabet::dna(), "AAAA");
  const Sequence b(Alphabet::dna(), "CCCC");
  const Alignment aln = local_align(a, b, negative);
  EXPECT_EQ(aln.score, 0);
  EXPECT_EQ(aln.length(), 0u);
}

TEST(LocalAlign, RegionConsistentWithGappedRows) {
  Xoshiro256 rng(132);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 150, model, rng);
  const Alignment aln = local_align(pair.a, pair.b, scheme());
  std::size_t a_res = 0, b_res = 0;
  for (char c : aln.gapped_a) a_res += (c != '-');
  for (char c : aln.gapped_b) b_res += (c != '-');
  EXPECT_EQ(a_res, aln.a_end - aln.a_begin);
  EXPECT_EQ(b_res, aln.b_end - aln.b_begin);
  // Gapped rows really are the claimed subsequences.
  std::string sub_a;
  for (char c : aln.gapped_a) {
    if (c != '-') sub_a.push_back(c);
  }
  EXPECT_EQ(sub_a, pair.a.to_string().substr(aln.a_begin,
                                             aln.a_end - aln.a_begin));
}

TEST(LocalAlign, WorksAcrossFastLsaConfigurations) {
  Xoshiro256 rng(133);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 200, model, rng);
  const Score expected =
      local_align_full_matrix(pair.a, pair.b, scheme()).score;
  for (unsigned k : {2u, 8u}) {
    for (std::size_t bm : {16u, 1024u}) {
      FastLsaOptions options;
      options.k = k;
      options.base_case_cells = bm;
      EXPECT_EQ(local_align(pair.a, pair.b, scheme(), options).score,
                expected)
          << "k=" << k << " bm=" << bm;
    }
  }
}

TEST(LocalAlign, StatsAccumulateAcrossPhases) {
  Xoshiro256 rng(134);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 100, model, rng);
  FastLsaStats stats;
  local_align(pair.a, pair.b, scheme(), {}, &stats);
  // Forward pass + reverse pass + FastLSA all counted.
  EXPECT_GT(stats.counters.cells_scored,
            static_cast<std::uint64_t>(pair.a.size()) * pair.b.size());
}

TEST(LocalAlign, RejectsAffineScheme) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const Sequence a(Alphabet::dna(), "ACGT");
  EXPECT_THROW(local_align(a, a, affine), std::invalid_argument);
}

}  // namespace
}  // namespace flsa
