// E3 — sequential comparison: FM vs Hirschberg vs FastLSA across sizes
// (the paper's headline sequential experiment).
//
// Expected shape (paper Sections 1 and 4): FastLSA is always as fast or
// faster than both baselines — it does ~1.0-1.5x m*n operations (vs
// Hirschberg's ~2x) and, unlike FM, works out of a cache-sized buffer.
#include <iostream>

#include "benchlib/results.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E3: sequential time, FM vs Hirschberg vs FastLSA ===\n\n";
  flsa::Table table({"pair", "algorithm", "time ms", "cells (x m*n)",
                     "throughput"});
  flsa::bench::CsvSink csv("e3_sequential_time",
                           {"pair", "algorithm", "time_ms", "cells_factor"});
  for (const flsa::bench::Workload& w : flsa::bench::standard_suite(8000)) {
    const flsa::SequencePair pair = w.make();
    const flsa::ScoringScheme& scheme = w.scheme();
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());

    struct Run {
      const char* name;
      std::function<flsa::DpCounters()> fn;
    };
    flsa::FastLsaOptions fl;
    fl.k = 8;
    fl.base_case_cells = 1u << 18;  // ~1 MiB of Score: cache-resident
    flsa::HirschbergOptions hb;
    hb.base_case_cells = 1u << 18;
    const Run runs[] = {
        {"full-matrix",
         [&] {
           flsa::DpCounters c;
           flsa::full_matrix_align(pair.a, pair.b, scheme, &c);
           return c;
         }},
        {"hirschberg",
         [&] {
           flsa::DpCounters c;
           flsa::hirschberg_align(pair.a, pair.b, scheme, hb, &c);
           return c;
         }},
        {"fastlsa",
         [&] {
           flsa::FastLsaStats stats;
           flsa::fastlsa_align(pair.a, pair.b, scheme, fl, &stats);
           return stats.counters;
         }},
    };
    for (const Run& run : runs) {
      flsa::DpCounters counters;
      const flsa::Summary timing = flsa::bench::time_runs(
          [&] { counters = run.fn(); }, /*reps=*/3, /*warmup=*/1);
      const double cells = static_cast<double>(counters.total_cells());
      table.add_row({w.name, run.name,
                     flsa::Table::num(timing.median * 1e3),
                     flsa::Table::num(cells / mn),
                     flsa::bench::throughput(cells, timing.median)});
      csv.row({w.name, run.name, flsa::Table::num(timing.median * 1e3),
               flsa::Table::num(cells / mn, 4)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: fastlsa <= full-matrix <= hirschberg in time;\n"
         "cell factors ~1.0-1.2 (fastlsa), 1.0 (FM), ~2.0 (hirschberg).\n";
  return 0;
}
