// E3 — sequential comparison: FM vs Hirschberg vs FastLSA across sizes
// (the paper's headline sequential experiment), with every linear-space
// algorithm also measured per sweep-kernel variant (scalar row sweep vs
// the SIMD anti-diagonal kernel).
//
// Expected shape (paper Sections 1 and 4): FastLSA is always as fast or
// faster than both baselines — it does ~1.0-1.5x m*n operations (vs
// Hirschberg's ~2x) and, unlike FM, works out of a cache-sized buffer.
// The findscore[...] rows isolate the kernels themselves (one boundary
// sweep, no traceback): on an AVX2 host the simd variant sustains well
// over 1.5x the scalar cells/second.
#include <fstream>
#include <iostream>
#include <map>
#include <vector>

#include "benchlib/results.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

namespace {

struct KernelRow {
  std::string pair;
  std::string kernel;
  double median_ms = 0;
  double cells_per_s = 0;
  std::uint64_t escalations = 0;
};

/// BENCH_kernels.json: one findscore row per pair x kernel tier, plus the
/// headline int16-vs-int32 speedup per pair, for CI trend tracking.
void write_kernels_json(const std::string& path,
                        const std::vector<KernelRow>& rows,
                        const std::map<std::string, double>& speedup_16_32) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"simd_isa\": \"" << flsa::simd_kernel_isa()
      << "\",\n  \"findscore\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    out << "    {\"pair\": \"" << r.pair << "\", \"kernel\": \"" << r.kernel
        << "\", \"median_ms\": " << r.median_ms
        << ", \"cells_per_s\": " << r.cells_per_s
        << ", \"escalations\": " << r.escalations << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_int16_vs_simd\": {\n";
  std::size_t i = 0;
  for (const auto& [pair_name, ratio] : speedup_16_32) {
    out << "    \"" << pair_name << "\": " << ratio
        << (++i < speedup_16_32.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== E3: sequential time, FM vs Hirschberg vs FastLSA ===\n"
            << "sweep kernels on this host:";
  for (const flsa::KernelKind kind : flsa::bench::kernel_variants()) {
    std::cout << " " << flsa::to_string(kind);
  }
  std::cout << " (simd ISA: " << flsa::simd_kernel_isa() << ")\n\n";

  flsa::Table table({"pair", "algorithm", "time ms", "cells (x m*n)",
                     "throughput"});
  flsa::bench::CsvSink csv(
      "e3_sequential_time",
      {"pair", "algorithm", "time_ms", "cells_factor", "cells_per_s"});
  // pair name -> kernel -> findscore cells/second, for the speedup footer.
  std::map<std::string, std::map<flsa::KernelKind, double>> findscore_rate;
  std::vector<KernelRow> kernel_rows;

  for (const flsa::bench::Workload& w : flsa::bench::standard_suite(8000)) {
    const flsa::SequencePair pair = w.make();
    const flsa::ScoringScheme& scheme = w.scheme();
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());

    struct Run {
      std::string name;
      flsa::KernelKind kernel = flsa::KernelKind::kScalar;
      bool is_findscore = false;
      std::function<flsa::DpCounters()> fn;
    };
    flsa::FastLsaOptions fl;
    fl.k = 8;
    fl.base_case_cells = 1u << 18;  // ~1 MiB of Score: cache-resident
    flsa::HirschbergOptions hb;
    hb.base_case_cells = 1u << 18;

    std::vector<Run> runs;
    runs.push_back({"full-matrix", flsa::KernelKind::kScalar, false, [&] {
                      flsa::DpCounters c;
                      flsa::full_matrix_align(pair.a, pair.b, scheme, &c);
                      return c;
                    }});
    for (const flsa::KernelKind kind : flsa::bench::kernel_variants()) {
      runs.push_back({flsa::bench::kernel_label("findscore", kind), kind,
                      true, [&, kind] {
                        flsa::DpCounters c;
                        flsa::global_score_linear(kind, pair.a.residues(),
                                                  pair.b.residues(), scheme,
                                                  &c);
                        return c;
                      }});
      runs.push_back({flsa::bench::kernel_label("hirschberg", kind), kind,
                      false, [&, kind] {
                        flsa::DpCounters c;
                        flsa::HirschbergOptions opt = hb;
                        opt.kernel = kind;
                        flsa::hirschberg_align(pair.a, pair.b, scheme, opt,
                                               &c);
                        return c;
                      }});
      runs.push_back({flsa::bench::kernel_label("fastlsa", kind), kind,
                      false, [&, kind] {
                        flsa::FastLsaStats stats;
                        flsa::FastLsaOptions opt = fl;
                        opt.kernel = kind;
                        flsa::fastlsa_align(pair.a, pair.b, scheme, opt,
                                            &stats);
                        return stats.counters;
                      }});
    }

    for (const Run& run : runs) {
      flsa::DpCounters counters;
      // The findscore rows feed the headline per-tier speedups; they are
      // cheap (one sweep, no traceback), so buy them extra reps for a
      // stable median.
      const int reps = run.is_findscore ? 9 : 3;
      const flsa::Summary timing = flsa::bench::time_runs(
          [&] { counters = run.fn(); }, reps, /*warmup=*/1);
      const double cells = static_cast<double>(counters.total_cells());
      const double rate = flsa::bench::cells_per_second(cells, timing.median);
      if (run.is_findscore) {
        findscore_rate[w.name][run.kernel] = rate;
        kernel_rows.push_back({w.name, flsa::to_string(run.kernel),
                               timing.median * 1e3, rate,
                               counters.kernel_escalations});
      }
      table.add_row({w.name, run.name,
                     flsa::Table::num(timing.median * 1e3),
                     flsa::Table::num(cells / mn),
                     flsa::bench::throughput(cells, timing.median)});
      csv.row({w.name, run.name, flsa::Table::num(timing.median * 1e3),
               flsa::Table::num(cells / mn, 4), flsa::Table::num(rate)});
    }
  }
  table.print(std::cout);

  std::cout << "\nSIMD kernel speedup (findscore cells/s, simd / scalar):\n";
  for (const auto& [pair_name, rates] : findscore_rate) {
    const auto scalar = rates.find(flsa::KernelKind::kScalar);
    const auto simd = rates.find(flsa::KernelKind::kSimd);
    if (scalar == rates.end() || simd == rates.end() ||
        scalar->second <= 0) {
      continue;
    }
    std::cout << "  " << pair_name << ": "
              << flsa::Table::num(simd->second / scalar->second, 2)
              << "x\n";
  }
  std::map<std::string, double> speedup_16_32;
  std::cout << "\nNarrow-tier speedup (findscore cells/s, int16 / simd):\n";
  for (const auto& [pair_name, rates] : findscore_rate) {
    const auto simd = rates.find(flsa::KernelKind::kSimd);
    const auto i16 = rates.find(flsa::KernelKind::kInt16);
    if (simd == rates.end() || i16 == rates.end() || simd->second <= 0) {
      continue;
    }
    speedup_16_32[pair_name] = i16->second / simd->second;
    std::cout << "  " << pair_name << ": "
              << flsa::Table::num(i16->second / simd->second, 2) << "x\n";
  }
  write_kernels_json("BENCH_kernels.json", kernel_rows, speedup_16_32);
  std::cout << "\nwrote BENCH_kernels.json\n";

  std::cout
      << "\nExpected shape: fastlsa <= full-matrix <= hirschberg in time;\n"
         "cell factors ~1.0-1.2 (fastlsa), 1.0 (FM), ~2.0 (hirschberg);\n"
         "findscore[simd] well above findscore[scalar] on AVX2 hosts;\n"
         "findscore[int16] at least 1.5x findscore[simd] on AVX2 hosts.\n";
  return 0;
}
