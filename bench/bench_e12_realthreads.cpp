// E12 — real std::thread Parallel FastLSA (sanity harness).
//
// This measures actual wall time with the real thread pool and both
// schedulers. On the paper's multiprocessor this is the headline
// experiment; on a low-core host (this machine reports its count below)
// speedups are bounded by the hardware and the virtual-time benches E6-E8
// carry the shape analysis. Correctness is asserted regardless.
#include <iostream>
#include <thread>

#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E12: real-thread Parallel FastLSA ===\n\n";
  std::cout << "hardware_concurrency reported by this host: "
            << std::thread::hardware_concurrency() << "\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 16;

  const flsa::Score expected =
      flsa::fastlsa_align(pair.a, pair.b, scheme, options).score;

  flsa::Table table({"threads", "scheduler", "time ms", "speedup vs 1",
                     "score ok"});
  double base_ms = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (flsa::SchedulerKind kind :
         {flsa::SchedulerKind::kBarrierStaged,
          flsa::SchedulerKind::kDependencyCounter,
          flsa::SchedulerKind::kWorkStealing}) {
      flsa::ParallelOptions parallel;
      parallel.threads = threads;
      parallel.scheduler = kind;
      flsa::Score score = 0;
      const flsa::Summary timing = flsa::bench::time_runs(
          [&] {
            score = flsa::parallel_fastlsa_align(pair.a, pair.b, scheme,
                                                 options, parallel)
                        .score;
          },
          /*reps=*/3, /*warmup=*/1);
      const double ms = timing.median * 1e3;
      if (threads == 1 && kind == flsa::SchedulerKind::kBarrierStaged) {
        base_ms = ms;
      }
      table.add_row({std::to_string(threads), flsa::to_string(kind),
                     flsa::Table::num(ms),
                     flsa::Table::num(base_ms > 0 ? base_ms / ms : 1.0),
                     score == expected ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nOn a single-core host expect flat times (threading"
               " overhead only); on a real\nmultiprocessor this table"
               " reproduces the paper's near-linear speedups.\n";
  return 0;
}
