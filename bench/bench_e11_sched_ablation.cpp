// E11 — ablation (our addition, called out in DESIGN.md): wavefront
// scheduling policy and fill-tile granularity.
//
// The paper schedules wavefront lines as synchronized stages; the
// dependency-counter scheduler removes the barrier, and the work-stealing
// scheduler additionally removes the shared ready-counter scan — each
// finished tile is handed straight to the finishing worker's own deque.
// Two views:
//   * virtual time: isolates the schedule itself (work-stealing and
//     dependency-counter share the dependency-driven makespan bound);
//   * real threads: wall-clock cells/s per scheduler on a uniform square
//     grid and on a ragged rectangular grid at large P, plus steal and
//     allocation counters. This section feeds BENCH_sched.json so CI
//     tracks the perf trajectory.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "obs/metrics.hpp"
#include "support/table.hpp"

namespace {

struct RealRow {
  std::string config;
  std::string scheduler;
  unsigned threads = 0;
  double median_ms = 0.0;
  double cells_per_s = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t pool_misses_steady = 0;
  std::uint64_t pool_hits_steady = 0;
  bool score_ok = false;
};

/// One real-thread config timed under every scheduler. A reused workspace
/// per scheduler makes the timed runs steady-state (warm-up absorbs the
/// pool growth), so pool_misses_steady == 0 is itself an assertion of the
/// allocation-free hot path.
void run_real_config(const std::string& config, const flsa::Sequence& a,
                     const flsa::Sequence& b, const flsa::ScoringScheme& scheme,
                     const flsa::FastLsaOptions& base_options, unsigned threads,
                     std::size_t tiles_per_block, std::vector<RealRow>* rows) {
  const flsa::Score expected =
      flsa::fastlsa_align(a, b, scheme, base_options).score;
  const double cells =
      static_cast<double>(a.size()) * static_cast<double>(b.size());
  for (flsa::SchedulerKind kind : {flsa::SchedulerKind::kBarrierStaged,
                                   flsa::SchedulerKind::kDependencyCounter,
                                   flsa::SchedulerKind::kWorkStealing}) {
    flsa::FastLsaWorkspace workspace;
    flsa::FastLsaOptions options = base_options;
    options.workspace = &workspace;
    flsa::ParallelOptions parallel;
    parallel.threads = threads;
    parallel.scheduler = kind;
    parallel.tiles_per_block = tiles_per_block;

    flsa::obs::Counter& steal_counter =
        flsa::obs::metrics().counter("wavefront.steals");
    flsa::obs::Counter& attempt_counter =
        flsa::obs::metrics().counter("wavefront.steal_attempts");
    const std::uint64_t steals0 = steal_counter.value();
    const std::uint64_t attempts0 = attempt_counter.value();

    flsa::FastLsaStats stats;
    flsa::Score score = 0;
    const flsa::Summary timing = flsa::bench::time_runs(
        [&] {
          score = flsa::parallel_fastlsa_align(a, b, scheme, options, parallel,
                                               &stats)
                      .score;
        },
        /*reps=*/5, /*warmup=*/1);

    RealRow row;
    row.config = config;
    row.scheduler = flsa::to_string(kind);
    row.threads = threads;
    row.median_ms = timing.median * 1e3;
    row.cells_per_s = flsa::bench::cells_per_second(cells, timing.median);
    row.steals = steal_counter.value() - steals0;
    row.steal_attempts = attempt_counter.value() - attempts0;
    // stats come from the last (fully warm) rep.
    row.pool_misses_steady = stats.arena_pool_misses;
    row.pool_hits_steady = stats.arena_pool_hits;
    row.score_ok = score == expected;
    rows->push_back(row);
  }
}

void write_json(const std::string& path,
                const std::vector<std::vector<std::string>>& virtual_rows,
                const std::vector<RealRow>& real_rows) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"host_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"virtual\": [\n";
  for (std::size_t i = 0; i < virtual_rows.size(); ++i) {
    const auto& r = virtual_rows[i];
    out << "    {\"tiles_per_block\": " << r[0] << ", \"top_tiles\": " << r[1]
        << ", \"scheduler\": \"" << r[2] << "\", \"speedup_at_8\": " << r[3]
        << ", \"efficiency_at_8\": " << r[4] << ", \"model_bound_at_8\": "
        << r[5] << "}" << (i + 1 < virtual_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"real\": [\n";
  for (std::size_t i = 0; i < real_rows.size(); ++i) {
    const RealRow& r = real_rows[i];
    out << "    {\"config\": \"" << r.config << "\", \"scheduler\": \""
        << r.scheduler << "\", \"threads\": " << r.threads
        << ", \"median_ms\": " << r.median_ms
        << ", \"cells_per_s\": " << r.cells_per_s
        << ", \"steals\": " << r.steals
        << ", \"steal_attempts\": " << r.steal_attempts
        << ", \"pool_misses_steady\": " << r.pool_misses_steady
        << ", \"pool_hits_steady\": " << r.pool_hits_steady
        << ", \"score_ok\": " << (r.score_ok ? "true" : "false") << "}"
        << (i + 1 < real_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== E11: scheduler + tiling ablation ===\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 14;

  // ---- Virtual time: the schedule itself, no hardware noise. ----
  std::vector<std::vector<std::string>> virtual_rows;
  flsa::Table table({"tiles/block", "R=C (top)", "policy", "speedup@8",
                     "eff@8", "model eff bound@8"});
  for (std::size_t tiles : {1u, 2u, 4u, 8u}) {
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
        /*simulated_threads=*/8, tiles, /*base_case_tiles=*/4 * tiles);
    const std::size_t top = options.k * tiles;
    for (flsa::SchedulerKind policy :
         {flsa::SchedulerKind::kBarrierStaged,
          flsa::SchedulerKind::kDependencyCounter,
          flsa::SchedulerKind::kWorkStealing}) {
      const flsa::SpeedupPoint p8 = flsa::speedup_at(run.trace, 8, policy);
      const std::vector<std::string> row = {
          std::to_string(tiles), std::to_string(top), flsa::to_string(policy),
          flsa::Table::num(p8.speedup), flsa::Table::num(p8.efficiency),
          flsa::Table::num(flsa::model::efficiency_bound(8, top, top))};
      table.add_row(row);
      virtual_rows.push_back(row);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: dependency-counter and work-stealing share"
               " the dependency-driven\nmakespan and beat barrier-staged at"
               " every tiling; finer tiles raise all three\n(alpha falls"
               " with R*C), with diminishing returns past ~4.\n";

  // ---- Real threads: wall-clock cells/s per scheduler. ----
  std::cout << "\n=== real-thread scheduler comparison (host threads: "
            << std::thread::hardware_concurrency() << ") ===\n\n";
  flsa::obs::set_enabled(true);  // steal/arena counters are gated on this
  std::vector<RealRow> real_rows;
  // Uniform: square problem, coarse tiles, moderate P — every wavefront
  // line is evenly loaded, so stealing has little to win; it must not lose.
  run_real_config("uniform", pair.a, pair.b,
                  flsa::ScoringScheme::paper_default(), options,
                  /*threads=*/4, /*tiles_per_block=*/2, &real_rows);
  // Ragged/large-P: rectangular unrelated pair, fine tiles, P = 8. The
  // min-tile-extent floor and the 4:1 aspect ratio make tile costs ragged;
  // barrier stages stall on the slowest tile of each line.
  {
    flsa::Xoshiro256 rng(7);
    const flsa::Sequence ra =
        flsa::random_sequence(flsa::Alphabet::protein(), 6000, rng);
    const flsa::Sequence rb =
        flsa::random_sequence(flsa::Alphabet::protein(), 1500, rng);
    run_real_config("ragged", ra, rb, flsa::ScoringScheme::paper_default(),
                    options, /*threads=*/8, /*tiles_per_block=*/3, &real_rows);
  }
  flsa::Table real({"config", "scheduler", "P", "time ms", "Mcell/s",
                    "steals", "attempts", "pool miss", "score ok"});
  for (const RealRow& r : real_rows) {
    real.add_row({r.config, r.scheduler, std::to_string(r.threads),
                  flsa::Table::num(r.median_ms),
                  flsa::Table::num(r.cells_per_s / 1e6),
                  std::to_string(r.steals), std::to_string(r.steal_attempts),
                  std::to_string(r.pool_misses_steady),
                  r.score_ok ? "yes" : "NO"});
  }
  real.print(std::cout);
  std::cout << "\nSteady-state pool misses must be 0 (the arena absorbs all"
               " per-run allocation\nafter warm-up). On a single-core host"
               " the cells/s columns flatten — the virtual\ntable above"
               " carries the schedule comparison there.\n";

  write_json("BENCH_sched.json", virtual_rows, real_rows);
  std::cout << "\nwrote BENCH_sched.json\n";

  // Visualize the paper's three wavefront phases (its Figure 13) on the
  // largest fill grid: ramp-up dots at the left, a saturated middle, and
  // ramp-down at the right. Digits are the tile's anti-diagonal mod 10.
  const flsa::SimulatedRun viz = flsa::record_fastlsa(
      pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
      /*simulated_threads=*/8, /*tiles_per_block=*/2,
      /*base_case_tiles=*/8);
  const flsa::TileGridRecord* biggest = nullptr;
  for (const flsa::TileGridRecord& g : viz.trace.grids) {
    if (g.phase == flsa::TilePhase::kFillCache &&
        (!biggest || g.total_cost() > biggest->total_cost())) {
      biggest = &g;
    }
  }
  if (biggest) {
    std::cout << "\ntop-level fill schedule on P = 8 (paper Figure 13's"
                 " three phases):\n";
    std::cout << flsa::render_gantt(
        flsa::schedule_grid(*biggest, 8));
  }
  return 0;
}
