// E11 — ablation (our addition, called out in DESIGN.md): wavefront
// scheduling policy and fill-tile granularity.
//
// The paper schedules wavefront lines as synchronized stages; the
// dependency-counter scheduler removes the barrier. Finer tiles per block
// raise R*C (lower alpha) at the cost of more boundary traffic (the real
// run pays it; the virtual-time comparison isolates the schedule itself).
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E11: scheduler + tiling ablation (virtual time) ===\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 14;

  flsa::Table table({"tiles/block", "R=C (top)", "policy", "speedup@8",
                     "eff@8", "model eff bound@8"});
  for (std::size_t tiles : {1u, 2u, 4u, 8u}) {
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
        /*simulated_threads=*/8, tiles, /*base_case_tiles=*/4 * tiles);
    const std::size_t top = options.k * tiles;
    for (flsa::SchedulerKind policy :
         {flsa::SchedulerKind::kBarrierStaged,
          flsa::SchedulerKind::kDependencyCounter}) {
      const flsa::SpeedupPoint p8 = flsa::speedup_at(run.trace, 8, policy);
      table.add_row({std::to_string(tiles), std::to_string(top),
                     flsa::to_string(policy), flsa::Table::num(p8.speedup),
                     flsa::Table::num(p8.efficiency),
                     flsa::Table::num(
                         flsa::model::efficiency_bound(8, top, top))});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: dependency-counter >= barrier-staged at"
               " every tiling; finer\ntiles raise both (alpha falls with"
               " R*C), with diminishing returns past ~4.\n";

  // Visualize the paper's three wavefront phases (its Figure 13) on the
  // largest fill grid: ramp-up dots at the left, a saturated middle, and
  // ramp-down at the right. Digits are the tile's anti-diagonal mod 10.
  const flsa::SimulatedRun viz = flsa::record_fastlsa(
      pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
      /*simulated_threads=*/8, /*tiles_per_block=*/2,
      /*base_case_tiles=*/8);
  const flsa::TileGridRecord* biggest = nullptr;
  for (const flsa::TileGridRecord& g : viz.trace.grids) {
    if (g.phase == flsa::TilePhase::kFillCache &&
        (!biggest || g.total_cost() > biggest->total_cost())) {
      biggest = &g;
    }
  }
  if (biggest) {
    std::cout << "\ntop-level fill schedule on P = 8 (paper Figure 13's"
                 " three phases):\n";
    std::cout << flsa::render_gantt(
        flsa::schedule_grid(*biggest, 8));
  }
  return 0;
}
