// E5 — space usage: the quadratic/linear spectrum.
//
// FM stores (m+1)(n+1) cells; Hirschberg O(m+n); FastLSA adapts between
// them through BM (Base Case buffer) and k; banded alignment is
// O(m * band) and is what makes multi-megabase global alignment
// practical at all. Peak bytes are *measured* by the library's memory
// tracker for FastLSA and computed exactly for FM/banded; Hirschberg's
// O(m+n) rows are reported analytically. All cell arithmetic goes
// through the saturating estimated_cells helpers — at the multi-megabase
// row the naive (m+1)*(n+1) product is within an order of magnitude of
// wrapping 64 bits, and a wrapped byte count would chart as a tiny bar.
//
// Emits BENCH_space.json for CI trend tracking (same shape as the other
// BENCH_*.json artifacts).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchlib/workloads.hpp"
#include "dp/banded.hpp"
#include "flsa/flsa.hpp"
#include "service/protocol.hpp"
#include "support/checked.hpp"
#include "support/table.hpp"

namespace {

struct SpaceRow {
  std::string pair;
  std::string algorithm;
  std::uint64_t peak_bytes = 0;
  double vs_fm_percent = 0;
  double cell_factor = 0;  ///< cells computed / (m * n)
};

void write_space_json(const std::string& path,
                      const std::vector<SpaceRow>& rows) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"space\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SpaceRow& r = rows[i];
    out << "    {\"pair\": \"" << r.pair << "\", \"algorithm\": \""
        << r.algorithm << "\", \"peak_bytes\": " << r.peak_bytes
        << ", \"vs_fm_percent\": " << r.vs_fm_percent
        << ", \"cell_factor\": " << r.cell_factor << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== E5: space usage across the algorithm spectrum ===\n\n";
  std::vector<SpaceRow> rows;
  flsa::Table table({"pair", "algorithm", "peak KiB", "vs FM %",
                     "cells (x m*n)"});
  auto emit = [&](const SpaceRow& row) {
    rows.push_back(row);
    table.add_row({row.pair, row.algorithm,
                   std::to_string(row.peak_bytes / 1024),
                   flsa::Table::num(row.vs_fm_percent),
                   flsa::Table::num(row.cell_factor)});
  };

  for (const flsa::bench::Workload& w : flsa::bench::standard_suite(8000)) {
    const flsa::SequencePair pair = w.make();
    const flsa::ScoringScheme& scheme = w.scheme();
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());
    // Saturating: the same admission-budget currency the service uses,
    // so a pair too big for 64-bit cell counts pins at the ceiling
    // instead of wrapping to a small lie.
    const std::uint64_t fm_bytes = flsa::mul_sat_u64(
        flsa::service::estimated_cells(pair.a.size(), pair.b.size()),
        sizeof(flsa::Score));
    emit({w.name, "full-matrix", fm_bytes, 100.0, 1.0});
    const std::uint64_t hirschberg_bytes =
        // two score rows + recursion bookkeeping
        3 * (pair.a.size() + pair.b.size() + 2) * sizeof(flsa::Score);
    emit({w.name, "hirschberg (analytical)", hirschberg_bytes,
          100.0 * static_cast<double>(hirschberg_bytes) /
              static_cast<double>(fm_bytes),
          2.0});
    for (const auto& [label, bm] :
         {std::pair<const char*, std::size_t>{"fastlsa BM=64Ki", 1u << 16},
          {"fastlsa BM=1Mi", 1u << 20}}) {
      flsa::FastLsaOptions options;
      options.k = 8;
      options.base_case_cells = bm;
      flsa::FastLsaStats stats;
      flsa::fastlsa_align(pair.a, pair.b, scheme, options, &stats);
      emit({w.name, label, stats.peak_bytes,
            100.0 * static_cast<double>(stats.peak_bytes) /
                static_cast<double>(fm_bytes),
            static_cast<double>(stats.counters.total_cells()) / mn});
    }
  }

  // The genome-scale row: a 2 Mbp substitution-only DNA pair under a
  // banded global alignment (half-width 32), the streaming service's
  // ALIGN_REF mode. FM would need ~16 TB here; the band needs ~500 MiB.
  {
    constexpr std::size_t kGenomeBp = 2'000'000;
    constexpr std::size_t kBand = 32;
    flsa::Xoshiro256 rng(55);
    flsa::MutationModel model;
    model.substitution_rate = 0.02;
    model.insertion_rate = 0;
    model.deletion_rate = 0;
    const flsa::SequencePair pair =
        flsa::homologous_pair(flsa::Alphabet::dna(), kGenomeBp, model, rng);
    static const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
    const flsa::ScoringScheme scheme(matrix, -4);
    flsa::DpCounters counters;
    const flsa::Score score =
        flsa::banded_score(pair.a, pair.b, scheme, kBand, &counters);
    const std::uint64_t fm_bytes = flsa::mul_sat_u64(
        flsa::service::estimated_cells(pair.a.size(), pair.b.size()),
        sizeof(flsa::Score));
    const std::uint64_t banded_bytes = flsa::mul_sat_u64(
        flsa::service::estimated_banded_cells(pair.a.size(), pair.b.size(),
                                              kBand),
        sizeof(flsa::Score));
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());
    emit({"dna-2Mbp", "full-matrix (analytical)", fm_bytes, 100.0, 1.0});
    emit({"dna-2Mbp", "banded w=32", banded_bytes,
          100.0 * static_cast<double>(banded_bytes) /
              static_cast<double>(fm_bytes),
          static_cast<double>(counters.total_cells()) / mn});
    std::cout << "2 Mbp banded score (sanity, not charted): " << score
              << "\n\n";
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: FastLSA's peak sits orders of magnitude"
               " below FM for large pairs\nand shrinks with BM, at the cost"
               " of a slightly higher cell factor; the banded row is\nwhat"
               " lets the streaming service touch multi-megabase pairs at"
               " all.\n";
  write_space_json("BENCH_space.json", rows);
  std::cout << "\nwrote BENCH_space.json\n";
  return 0;
}
