// E5 — space usage: the quadratic/linear spectrum.
//
// FM stores (m+1)(n+1) cells; Hirschberg O(m+n); FastLSA adapts between
// them through BM (Base Case buffer) and k. Peak bytes are *measured* by
// the library's memory tracker for FastLSA and computed exactly for FM;
// Hirschberg's O(m+n) rows are reported analytically.
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E5: space usage across the algorithm spectrum ===\n\n";
  flsa::Table table({"pair", "algorithm", "peak KiB", "vs FM %",
                     "cells (x m*n)"});
  for (const flsa::bench::Workload& w : flsa::bench::standard_suite(8000)) {
    const flsa::SequencePair pair = w.make();
    const flsa::ScoringScheme& scheme = w.scheme();
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());
    const std::size_t fm_bytes =
        (pair.a.size() + 1) * (pair.b.size() + 1) * sizeof(flsa::Score);
    table.add_row({w.name, "full-matrix", std::to_string(fm_bytes / 1024),
                   "100.0", "1.00"});
    const std::size_t hirschberg_bytes =
        // two score rows + recursion bookkeeping
        3 * (pair.a.size() + pair.b.size() + 2) * sizeof(flsa::Score);
    table.add_row({w.name, "hirschberg (analytical)",
                   std::to_string(hirschberg_bytes / 1024),
                   flsa::Table::num(100.0 * static_cast<double>(
                                                hirschberg_bytes) /
                                    static_cast<double>(fm_bytes)),
                   "~2.00"});
    for (const auto& [label, bm] :
         {std::pair<const char*, std::size_t>{"fastlsa BM=64Ki", 1u << 16},
          {"fastlsa BM=1Mi", 1u << 20}}) {
      flsa::FastLsaOptions options;
      options.k = 8;
      options.base_case_cells = bm;
      flsa::FastLsaStats stats;
      flsa::fastlsa_align(pair.a, pair.b, scheme, options, &stats);
      table.add_row(
          {w.name, label, std::to_string(stats.peak_bytes / 1024),
           flsa::Table::num(100.0 * static_cast<double>(stats.peak_bytes) /
                            static_cast<double>(fm_bytes)),
           flsa::Table::num(
               static_cast<double>(stats.counters.total_cells()) / mn)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: FastLSA's peak sits orders of magnitude"
               " below FM for large pairs\nand shrinks with BM, at the cost"
               " of a slightly higher cell factor.\n";
  return 0;
}
