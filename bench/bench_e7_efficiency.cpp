// E7 — parallel efficiency vs sequence size at fixed P (paper Section 6:
// "the efficiency of Parallel FastLSA increases with the size of the
// sequences that are aligned").
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E7: efficiency vs sequence size (virtual time) ===\n\n";
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 16;
  constexpr std::uint64_t kTileOverhead = 500;  // cells per tile dispatch
  flsa::Table table({"length", "speedup@4", "eff@4", "speedup@8", "eff@8",
                     "model eff bound@8"});
  for (std::size_t len : {500u, 1000u, 2000u, 4000u, 8000u}) {
    const flsa::SequencePair pair = flsa::bench::sized_workload(len).make();
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, flsa::ScoringScheme::paper_default(), options, 8);
    const flsa::SpeedupPoint p4 = flsa::speedup_at(
        run.trace, 4, flsa::SchedulerKind::kDependencyCounter,
        kTileOverhead);
    const flsa::SpeedupPoint p8 = flsa::speedup_at(
        run.trace, 8, flsa::SchedulerKind::kDependencyCounter,
        kTileOverhead);
    // Top-level fill tiling for the model bound (planned for 8 workers).
    flsa::ParallelOptions plan;
    plan.threads = 8;
    const std::size_t tiles =
        options.k * plan.resolved(options.k).tiles_per_block;
    table.add_row({std::to_string(len), flsa::Table::num(p4.speedup),
                   flsa::Table::num(p4.efficiency),
                   flsa::Table::num(p8.speedup),
                   flsa::Table::num(p8.efficiency),
                   flsa::Table::num(
                       flsa::model::efficiency_bound(8, tiles, tiles))});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: efficiency rises monotonically with"
               " sequence length at both\nP = 4 and P = 8 — more tiles per"
               " wavefront line amortize the ramp phases.\n";
  return 0;
}
