// E8 — k's impact on *parallel* performance (the paper's "the selected
// value for parameter k has a significant impact on the parallel speedups
// ... interesting lessons in performance trade-offs").
//
// Larger k gives more (smaller) tiles per wavefront line — better
// parallelism — but also more recomputation in the sequential work term.
// The total virtual time exposes the sweet spot.
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E8: parallel FastLSA vs k at P = 8 (virtual time) ===\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  std::cout << "pair: " << pair.a.size() << " x " << pair.b.size()
            << ", one tile per block (paper-style tiling)\n\n";
  constexpr std::uint64_t kTileOverhead = 2000;  // cells per tile dispatch
  flsa::Table table({"k", "total cells (x m*n)", "speedup@8", "eff@8",
                     "virtual time (Mcells)"});
  const double mn = static_cast<double>(pair.a.size()) *
                    static_cast<double>(pair.b.size());
  for (unsigned k : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u}) {
    flsa::FastLsaOptions options;
    options.k = k;
    options.base_case_cells = 1u << 14;
    // tiles_per_block = 1: the wavefront width is exactly k, so k alone
    // controls parallelism, as in the paper's discussion.
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
        /*simulated_threads=*/8, /*tiles_per_block=*/1,
        /*base_case_tiles=*/1);
    const flsa::SpeedupPoint p8 = flsa::speedup_at(
        run.trace, 8, flsa::SchedulerKind::kDependencyCounter,
        kTileOverhead);
    table.add_row(
        {std::to_string(k),
         flsa::Table::num(static_cast<double>(run.trace.total_cells()) / mn,
                          3),
         flsa::Table::num(p8.speedup), flsa::Table::num(p8.efficiency),
         flsa::Table::num(static_cast<double>(p8.makespan) / 1e6)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: k = 2 parallelizes poorly (wavefront lines"
               " of <= 2 tiles);\nspeedup climbs with k while per-tile"
               " dispatch overhead grows with the tile count,\nso the best"
               " total virtual time sits at an interior k — the paper's"
               " trade-off.\n";
  return 0;
}
