// E13 — extension experiment (beyond the paper's linear-gap evaluation):
// affine-gap algorithms on the same sequential ladder as E3. FastLSA's
// grid lines cache (D, Ix, Iy) triples (3x the bytes), yet the
// time/operation shape carries over: FastLSA stays near 1.1x m*n cells
// while Myers-Miller pays ~2x.
#include <functional>
#include <iostream>

#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E13: affine-gap extension, Gotoh-FM vs Myers-Miller vs"
               " affine FastLSA ===\n\n";
  flsa::Table table({"pair", "algorithm", "time ms", "cells (x m*n)"});
  for (std::size_t len : {1000u, 2000u, 4000u}) {
    const flsa::SequencePair pair = flsa::bench::sized_workload(len).make();
    const flsa::ScoringScheme scheme(flsa::scoring::mdm78(), -12, -2);
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());
    flsa::FastLsaOptions fl;
    fl.k = 8;
    fl.base_case_cells = 1u << 16;  // affine cells are 3x bigger
    flsa::HirschbergOptions hb;
    hb.base_case_cells = 1u << 16;

    struct Run {
      const char* name;
      std::function<flsa::DpCounters()> fn;
    };
    const Run runs[] = {
        {"gotoh full-matrix",
         [&] {
           flsa::DpCounters c;
           flsa::full_matrix_align_affine(pair.a, pair.b, scheme, &c);
           return c;
         }},
        {"myers-miller",
         [&] {
           flsa::DpCounters c;
           flsa::hirschberg_align_affine(pair.a, pair.b, scheme, hb, &c);
           return c;
         }},
        {"fastlsa-affine",
         [&] {
           flsa::FastLsaStats stats;
           flsa::fastlsa_align_affine(pair.a, pair.b, scheme, fl, &stats);
           return stats.counters;
         }},
    };
    for (const Run& run : runs) {
      flsa::DpCounters counters;
      const flsa::Summary timing = flsa::bench::time_runs(
          [&] { counters = run.fn(); }, /*reps=*/3, /*warmup=*/0);
      table.add_row(
          {"prot-" + std::to_string(len), run.name,
           flsa::Table::num(timing.median * 1e3),
           flsa::Table::num(static_cast<double>(counters.total_cells()) /
                            mn)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: same ordering as the linear-gap E3 —"
               " affine FastLSA beats the\nGotoh full matrix on large pairs"
               " and Myers-Miller doubles the cell count.\n";
  return 0;
}
