// E9 — validating the paper's Appendix A analysis against the simulator.
//
// For every recorded Fill Cache grid: measured virtual makespan vs the
// model's PFillCacheT = M*N*alpha (Eq. 31). For the whole run: measured
// total vs the WT bound (Eq. 36). The bound must hold; the alpha model
// should track the barrier-staged makespan closely.
#include <algorithm>
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E9: measured virtual time vs paper Eq. 31/32/36 ===\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 14;
  const std::size_t tiles_per_block = 2;  // R = C = 16 at the top level
  // Theorem 4 assumes every recursion level is tiled R x C, so disable the
  // production min-tile-size floor (min_tile_extent = 1) for this check.
  const flsa::SimulatedRun run = flsa::record_fastlsa(
      pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
      /*simulated_threads=*/8, tiles_per_block, /*base_case_tiles=*/16,
      /*min_tile_extent=*/1);

  // Per-grid check on the largest fill grids (the top recursion levels).
  std::vector<const flsa::TileGridRecord*> fills;
  for (const flsa::TileGridRecord& g : run.trace.grids) {
    if (g.phase == flsa::TilePhase::kFillCache) fills.push_back(&g);
  }
  std::sort(fills.begin(), fills.end(),
            [](const auto* x, const auto* y) {
              return x->total_cost() > y->total_cost();
            });
  // Every measured alpha is labeled with the scheduler whose makespan it
  // came from: Eq. 31/32 model the *barrier-staged* schedule, so only
  // those rows should track the model (~1.0 ratio); dependency-driven
  // rows (dependency-counter / work-stealing share the same bound) beat
  // it, which is the headroom the stealing scheduler converts to speed.
  flsa::Table per_grid({"grid (RxC)", "cells", "P", "scheduler", "measured",
                        "model M*N*alpha", "alpha meas", "alpha model",
                        "ratio"});
  for (std::size_t i = 0; i < std::min<std::size_t>(4, fills.size()); ++i) {
    const flsa::TileGridRecord& g = *fills[i];
    for (unsigned p : {4u, 8u}) {
      for (flsa::SchedulerKind sched :
           {flsa::SchedulerKind::kBarrierStaged,
            flsa::SchedulerKind::kWorkStealing}) {
        const double measured =
            static_cast<double>(flsa::grid_makespan(g, p, sched));
        // Measured alpha = makespan / total work, directly comparable to
        // the paper's alpha = (1/P)(1 + (P^2 - P)/(R*C)) (Eq. 32).
        const double alpha_meas =
            measured / static_cast<double>(g.total_cost());
        const double alpha_model = flsa::model::alpha(p, g.rows, g.cols);
        const double predicted =
            static_cast<double>(g.total_cost()) * alpha_model;
        per_grid.add_row({std::to_string(g.rows) + "x" +
                              std::to_string(g.cols),
                          std::to_string(g.total_cost()), std::to_string(p),
                          flsa::to_string(sched),
                          flsa::Table::num(measured / 1e6, 3),
                          flsa::Table::num(predicted / 1e6, 3),
                          flsa::Table::num(alpha_meas, 4),
                          flsa::Table::num(alpha_model, 4),
                          flsa::Table::num(measured / predicted, 3)});
      }
    }
  }
  std::cout << "per-grid (Mcells): measured makespan by scheduler vs"
               " Eq. 31:\n";
  per_grid.print(std::cout);

  // Whole-run WT bound check (Eq. 36) per processor count. Theorem 4 is
  // derived for the staged schedule, so this table is explicitly
  // barrier-staged; the other schedulers can only be faster.
  flsa::Table whole({"P", "scheduler", "measured WT (Mcells)",
                     "Eq.36 bound (Mcells)", "bound holds"});
  const std::size_t top_tiles = options.k * tiles_per_block;
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double measured = static_cast<double>(flsa::trace_makespan(
        run.trace, p, flsa::SchedulerKind::kBarrierStaged));
    const double bound = flsa::model::total_time_bound(
        pair.a.size(), pair.b.size(), options.k, p, top_tiles, top_tiles);
    whole.add_row({std::to_string(p),
                   flsa::to_string(flsa::SchedulerKind::kBarrierStaged),
                   flsa::Table::num(measured / 1e6, 3),
                   flsa::Table::num(bound / 1e6, 3),
                   measured <= bound ? "yes" : "NO"});
  }
  std::cout << "\nwhole run vs Theorem 4 (Eq. 36):\n";
  whole.print(std::cout);
  std::cout << "\nExpected shape: barrier-staged per-grid ratios near 1.0"
               " (the alpha model is\ntight for uniform tiles);"
               " work-stealing ratios <= them; every measured WT under\nthe"
               " Eq. 36 bound.\n";
  return 0;
}
