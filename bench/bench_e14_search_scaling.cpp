// E14 — extension experiment: chained search vs whole-pair FastLSA
// across subject sizes.
//
// The whole-pair aligners are O(m*n) no matter where the homology sits;
// the chained pipeline (k-mer anchors -> colinear chaining -> banded gap
// fill between anchors) touches only the anchored neighbourhoods, so its
// cost grows ~linearly in the subject. Both must report the same score
// for the planted gene, and the headline ratio — chained search vs the
// whole-pair linear-space aligner — is what CI tracks in
// BENCH_search.json (the gate asserts >= 5x on the largest subject).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchlib/runner.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

struct SearchRow {
  std::size_t subject_bp = 0;
  double whole_pair_ms = 0;   ///< whole-pair linear-space local_align
  double index_ms = 0;        ///< one-time ReferenceIndex build
  double search_ms = 0;       ///< chained_search against the index
  double speedup = 0;         ///< whole_pair_ms / search_ms
  std::size_t anchors = 0;
  std::size_t chains = 0;
  std::size_t hits = 0;
  bool scores_agree = false;
};

/// BENCH_search.json: one row per subject size plus the headline speedup
/// on the largest subject, for CI trend tracking (same shape as
/// BENCH_kernels.json from bench_e3).
void write_search_json(const std::string& path,
                       const std::vector<SearchRow>& rows) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"search_scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SearchRow& r = rows[i];
    out << "    {\"subject_bp\": " << r.subject_bp
        << ", \"whole_pair_ms\": " << r.whole_pair_ms
        << ", \"index_ms\": " << r.index_ms
        << ", \"search_ms\": " << r.search_ms
        << ", \"speedup\": " << r.speedup
        << ", \"anchors\": " << r.anchors << ", \"chains\": " << r.chains
        << ", \"hits\": " << r.hits << ", \"scores_agree\": "
        << (r.scores_agree ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  const double headline = rows.empty() ? 0 : rows.back().speedup;
  out << "  ],\n  \"speedup_chained_vs_whole_pair\": " << headline
      << "\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== E14: chained search vs whole-pair FastLSA ===\n\n";
  flsa::Xoshiro256 rng(41);
  const flsa::Alphabet& dna = flsa::Alphabet::dna();
  const flsa::Sequence gene = flsa::random_sequence(dna, 200, rng, "gene");
  flsa::MutationModel drift;
  drift.substitution_rate = 0.05;
  const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
  const flsa::ScoringScheme scheme(matrix, -10);

  flsa::Table table({"subject bp", "whole-pair ms", "index ms", "search ms",
                     "speedup", "anchors", "scores agree"});
  std::vector<SearchRow> rows;
  for (std::size_t chr_len : {20000u, 50000u, 100000u, 200000u}) {
    const flsa::Sequence copy = flsa::mutate(gene, drift, rng);
    std::string chromosome =
        flsa::random_sequence(dna, chr_len, rng).to_string();
    chromosome.replace(chr_len / 2, copy.size(), copy.to_string());
    const flsa::Sequence subject(dna, chromosome, "chr");

    // Baseline: the library's own linear-space local aligner over the
    // whole pair, exactly what a caller without an index would run.
    flsa::Score whole_pair_score = 0;
    const flsa::Summary whole_pair = flsa::bench::time_runs(
        [&] {
          whole_pair_score =
              flsa::local_align(gene, subject, scheme).score;
        },
        /*reps=*/3, /*warmup=*/0);

    flsa::Timer index_timer;
    const flsa::search::ReferenceIndex index(subject, 12);
    const double index_ms = index_timer.millis();

    flsa::Score search_score = 0;
    flsa::search::ChainedSearchStats stats;
    std::size_t hit_count = 0;
    const flsa::Summary search = flsa::bench::time_runs(
        [&] {
          const auto hits =
              flsa::search::chained_search(gene, index, scheme, {}, &stats);
          hit_count = hits.size();
          search_score = hits.empty() ? 0 : hits[0].alignment.score;
        },
        /*reps=*/3, /*warmup=*/0);

    SearchRow row;
    row.subject_bp = chr_len;
    row.whole_pair_ms = whole_pair.median * 1e3;
    row.index_ms = index_ms;
    row.search_ms = search.median * 1e3;
    row.speedup = whole_pair.median / search.median;
    row.anchors = stats.anchors;
    row.chains = stats.chains;
    row.hits = hit_count;
    row.scores_agree = whole_pair_score == search_score;
    rows.push_back(row);

    table.add_row({std::to_string(chr_len),
                   flsa::Table::num(row.whole_pair_ms),
                   flsa::Table::num(row.index_ms),
                   flsa::Table::num(row.search_ms),
                   flsa::Table::num(row.speedup, 1),
                   std::to_string(row.anchors),
                   row.scores_agree ? "yes" : "NO"});
  }
  table.print(std::cout);
  write_search_json("BENCH_search.json", rows);
  std::cout << "\nwrote BENCH_search.json\n";
  std::cout << "\nExpected shape: whole-pair time grows linearly with the"
               " subject (quadratic in\ntotal work); index build is a"
               " one-time linear scan; chained search stays roughly\nflat,"
               " so the speedup grows with subject size — the seed-chain-"
               "extend payoff,\nhere built on the library's own aligners.\n";
  int disagreements = 0;
  for (const SearchRow& r : rows) {
    if (!r.scores_agree) ++disagreements;
  }
  return disagreements == 0 ? 0 : 1;
}
