// E14 — extension experiment: seed-and-extend search vs full
// Smith-Waterman across subject sizes.
//
// The DP aligners are O(m*n); the search pipeline (k-mer seeds + X-drop +
// windowed local alignment) touches only seed neighbourhoods, so its cost
// grows ~linearly in the subject. Both must report the same top hit score
// (the planted gene).
#include <iostream>

#include "benchlib/runner.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main() {
  std::cout << "=== E14: seed-and-extend vs full Smith-Waterman ===\n\n";
  flsa::Xoshiro256 rng(41);
  const flsa::Alphabet& dna = flsa::Alphabet::dna();
  const flsa::Sequence gene = flsa::random_sequence(dna, 200, rng, "gene");
  flsa::MutationModel drift;
  drift.substitution_rate = 0.05;
  const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
  const flsa::ScoringScheme scheme(matrix, -10);

  flsa::Table table({"subject bp", "SW ms", "index ms", "search ms",
                     "speedup", "scores agree"});
  for (std::size_t chr_len : {20000u, 50000u, 100000u, 200000u}) {
    const flsa::Sequence copy = flsa::mutate(gene, drift, rng);
    std::string chromosome =
        flsa::random_sequence(dna, chr_len, rng).to_string();
    chromosome.replace(chr_len / 2, copy.size(), copy.to_string());
    const flsa::Sequence subject(dna, chromosome, "chr");

    flsa::Score sw_score = 0;
    const flsa::Summary sw = flsa::bench::time_runs(
        [&] {
          sw_score =
              flsa::local_align_full_matrix(gene, subject, scheme).score;
        },
        /*reps=*/3, /*warmup=*/0);

    flsa::Timer index_timer;
    const flsa::search::KmerIndex index(subject, 10);
    const double index_ms = index_timer.millis();
    flsa::Score seed_score = 0;
    flsa::search::SearchParams params;
    params.k = 10;
    const flsa::Summary seed = flsa::bench::time_runs(
        [&] {
          const auto hits =
              flsa::search::seed_and_extend(gene, index, scheme, params);
          seed_score = hits.empty() ? 0 : hits[0].alignment.score;
        },
        /*reps=*/3, /*warmup=*/0);

    table.add_row(
        {std::to_string(chr_len), flsa::Table::num(sw.median * 1e3),
         flsa::Table::num(index_ms), flsa::Table::num(seed.median * 1e3),
         flsa::Table::num(sw.median / seed.median, 1),
         sw_score == seed_score ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: SW time grows linearly with the subject"
               " (quadratic in total\nwork); search time stays roughly"
               " flat, so the speedup grows with subject size —\nthe"
               " standard seed-and-extend payoff, here built on the"
               " library's own aligners.\n";
  return 0;
}
