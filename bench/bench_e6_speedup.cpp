// E6 — Parallel FastLSA speedup vs processor count per sequence size (the
// paper's main parallel figure).
//
// This host may have few cores, so the curves come from the virtual-time
// replay of the *actual* tile DAG executed by the algorithm (see
// simexec/recording.hpp and the substitution table in DESIGN.md). Expected
// shape: "good speedups, almost linear for 8 processors or less", larger
// sequences closer to linear.
#include <iostream>

#include "benchlib/results.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E6: Parallel FastLSA speedup vs P (virtual time) ===\n\n";
  // Fixed cost of dispatching one tile (sync + boundary copies), in cell
  // units (~4 us at 500 Mcell/s). This is what separates the size curves.
  constexpr std::uint64_t kTileOverhead = 500;
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1u << 16;
  flsa::Table table(
      {"pair", "P=1", "P=2", "P=4", "P=8", "P=16", "eff@8"});
  flsa::bench::CsvSink csv("e6_speedup",
                           {"pair", "processors", "speedup", "efficiency"});
  for (std::size_t len : {1000u, 2000u, 4000u, 8000u}) {
    const flsa::SequencePair pair =
        flsa::bench::sized_workload(len).make();
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, flsa::ScoringScheme::paper_default(), options,
        /*simulated_threads=*/8);
    const auto curve = flsa::speedup_curve(
        run.trace, {1, 2, 4, 8, 16},
        flsa::SchedulerKind::kDependencyCounter, kTileOverhead);
    for (const flsa::SpeedupPoint& point : curve) {
      csv.row({"prot-" + std::to_string(len),
               std::to_string(point.processors),
               flsa::Table::num(point.speedup, 4),
               flsa::Table::num(point.efficiency, 4)});
    }
    table.add_row({"prot-" + std::to_string(len),
                   flsa::Table::num(curve[0].speedup),
                   flsa::Table::num(curve[1].speedup),
                   flsa::Table::num(curve[2].speedup),
                   flsa::Table::num(curve[3].speedup),
                   flsa::Table::num(curve[4].speedup),
                   flsa::Table::num(curve[3].efficiency)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: nearly linear speedup through P = 8, with"
               " larger pairs closer to\nideal (the paper's Section 6"
               " observation: fixed per-tile costs amortize as tiles\n"
               "grow); P = 16 shows the tiling limit since the DAG was"
               " planned for 8 processors.\n";
  return 0;
}
