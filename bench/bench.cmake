# Bench binaries land directly in ${CMAKE_BINARY_DIR}/bench so that
# `for b in build/bench/*; do $b; done` runs every experiment.
function(flsa_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE flsa::flsa flsa_benchlib
                        benchmark::benchmark flsa_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

flsa_add_bench(bench_e1_worked_example)
flsa_add_bench(bench_e2_workloads)
flsa_add_bench(bench_e3_sequential_time)
flsa_add_bench(bench_e4_k_sweep)
flsa_add_bench(bench_e5_space)
flsa_add_bench(bench_e6_speedup)
flsa_add_bench(bench_e7_efficiency)
flsa_add_bench(bench_e8_parallel_k)
flsa_add_bench(bench_e9_model_check)
flsa_add_bench(bench_e10_cache)
flsa_add_bench(bench_e11_sched_ablation)
flsa_add_bench(bench_e12_realthreads)
flsa_add_bench(bench_e13_affine_extension)
flsa_add_bench(bench_e14_search_scaling)
flsa_add_bench(bench_e15_service_load)
