// E10 — memory-hierarchy effects (google-benchmark microbenchmarks).
//
// The paper's explanation for FastLSA beating FM in practice is cache
// behaviour: FM sweeps a quadratic matrix once; FastLSA re-derives blocks
// inside a buffer sized to cache. These benchmarks expose that directly:
//   - kernel throughput vs working-set width (row kernel),
//   - full-matrix vs FastLSA wall time at equal problem size,
//   - FastLSA throughput vs Base Case buffer size.
#include <benchmark/benchmark.h>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"

namespace {

const flsa::SequencePair& pair4k() {
  static const flsa::SequencePair pair =
      flsa::bench::sized_workload(4000).make();
  return pair;
}

void BM_RowKernelWidth(benchmark::State& state) {
  // Fixed 2M-cell sweeps with varying row width: when the row falls out of
  // L1/L2 the throughput drops — the effect FastLSA's blocking exploits.
  const auto width = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = (1u << 21) / width;
  flsa::Xoshiro256 rng(1);
  const flsa::Sequence a =
      flsa::random_sequence(flsa::Alphabet::protein(), rows, rng);
  const flsa::Sequence b =
      flsa::random_sequence(flsa::Alphabet::protein(), width, rng);
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flsa::global_score_linear(a.residues(), b.residues(), scheme));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * width));
}
BENCHMARK(BM_RowKernelWidth)->RangeMultiplier(4)->Range(256, 1 << 18);

void BM_FullMatrixAlign(benchmark::State& state) {
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flsa::full_matrix_align(pair.a, pair.b, scheme));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_FullMatrixAlign)->Unit(benchmark::kMillisecond);

void BM_FastLsaBufferSize(benchmark::State& state) {
  // FastLSA wall time vs BM: small cache-resident buffers win over big
  // memory-resident ones despite doing (slightly) more operations.
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  flsa::FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flsa::fastlsa_align(pair.a, pair.b, scheme, options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_FastLsaBufferSize)
    ->RangeMultiplier(8)
    ->Range(1 << 12, 1 << 24)
    ->Unit(benchmark::kMillisecond);

void BM_RowKernelPlain(benchmark::State& state) {
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flsa::global_score_linear(
        pair.a.residues(), pair.b.residues(), scheme));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_RowKernelPlain)->Unit(benchmark::kMillisecond);

void BM_RowKernelQueryProfile(benchmark::State& state) {
  // The query-profile layout streams one flat score row per residue.
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flsa::global_score_profiled(
        pair.a.residues(), pair.b.residues(), scheme));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_RowKernelQueryProfile)->Unit(benchmark::kMillisecond);

void BM_RowKernelAntidiagonal(benchmark::State& state) {
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flsa::global_score_antidiagonal(
        pair.a.residues(), pair.b.residues(), scheme));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_RowKernelAntidiagonal)->Unit(benchmark::kMillisecond);

void BM_Hirschberg(benchmark::State& state) {
  const flsa::SequencePair& pair = pair4k();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flsa::hirschberg_align(pair.a, pair.b, scheme));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pair.a.size() * pair.b.size()));
}
BENCHMARK(BM_Hirschberg)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
