// E4 — effect of the paper's tuning parameter k on sequential FastLSA.
//
// Measures operation counts and wall time across k and puts them against
// the paper's analytical results: ops <= m*n*(k/(k-1))^2 (Eq. 35 with
// P = 1), with the geometric-series estimate of Eq. 34 tracking closely.
#include <iostream>

#include "benchlib/results.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E4: sequential FastLSA vs k (paper Eq. 34/35) ===\n\n";
  const flsa::SequencePair pair = flsa::bench::sized_workload(4000).make();
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
  const double mn = static_cast<double>(pair.a.size()) *
                    static_cast<double>(pair.b.size());
  std::cout << "pair: " << pair.a.size() << " x " << pair.b.size()
            << " protein residues, BM = 4096 cells (linear-space end)\n\n";

  flsa::Table table({"k", "time ms", "cells (x m*n)", "model est (x m*n)",
                     "bound (k/(k-1))^2", "grid KiB peak"});
  flsa::bench::CsvSink csv(
      "e4_k_sweep", {"k", "time_ms", "cells_factor", "model_estimate",
                     "bound", "peak_kib"});
  for (unsigned k : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    flsa::FastLsaOptions options;
    options.k = k;
    options.base_case_cells = 4096;
    flsa::FastLsaStats stats;
    const flsa::Summary timing = flsa::bench::time_runs(
        [&] {
          stats = flsa::FastLsaStats{};
          flsa::fastlsa_align(pair.a, pair.b, scheme, options, &stats);
        },
        /*reps=*/3, /*warmup=*/0);
    const double measured =
        static_cast<double>(stats.counters.total_cells()) / mn;
    const double estimate =
        flsa::model::sequential_ops_estimate(
            pair.a.size(), pair.b.size(), k,
            static_cast<unsigned>(stats.max_recursion_depth)) /
        mn;
    const double bound =
        flsa::model::sequential_ops_bound(pair.a.size(), pair.b.size(), k) /
        mn;
    table.add_row({std::to_string(k), flsa::Table::num(timing.median * 1e3),
                   flsa::Table::num(measured, 3),
                   flsa::Table::num(estimate, 3),
                   flsa::Table::num(bound, 3),
                   std::to_string(stats.peak_bytes / 1024)});
    csv.row({std::to_string(k), flsa::Table::num(timing.median * 1e3),
             flsa::Table::num(measured, 4), flsa::Table::num(estimate, 4),
             flsa::Table::num(bound, 4),
             std::to_string(stats.peak_bytes / 1024)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured factor decreases toward 1.0 as k"
               " grows,\nalways below the (k/(k-1))^2 bound; space grows"
               " ~linearly with k.\n";
  return 0;
}
