// E15 — alignment service under closed-loop load (our addition; the
// serving-shape experiment the ROADMAP's "heavy traffic" north star asks
// for).
//
// Starts an in-process AlignmentServer on an ephemeral loopback port and
// drives it with C concurrent closed-loop clients (each sends a request,
// waits for the answer, repeats). Reports throughput and exact
// p50/p95/p99 latency per concurrency level, then demonstrates admission
// control: against a queue of capacity 1 a pipelined burst is answered
// with OVERLOADED rejections instead of unbounded queueing.
//
// Feeds BENCH_service.json so CI tracks the serving-path trajectory the
// same way BENCH_sched.json tracks the scheduler.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "benchlib/workloads.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "router/router.hpp"
#include "sequence/generate.hpp"
#include "service/client.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

struct LoadRow {
  unsigned connections = 0;
  std::size_t requests = 0;
  double wall_s = 0.0;
  double rps = 0.0;
  flsa::LatencyQuantiles latency;  // milliseconds
  std::size_t errors = 0;
};

/// C closed-loop clients, `per_client` requests each. Every latency sample
/// is kept; quantiles are exact order statistics (support/stats).
LoadRow run_closed_loop(std::uint16_t port,
                        const flsa::service::AlignRequest& prototype,
                        unsigned connections, std::size_t per_client) {
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        flsa::service::Client client;
        client.connect("127.0.0.1", port);
        latencies[c].reserve(per_client);
        for (std::size_t i = 0; i < per_client; ++i) {
          flsa::service::AlignRequest request = prototype;
          request.request_id = 0;
          const auto t0 = std::chrono::steady_clock::now();
          const flsa::service::Response response =
              client.call(std::move(request));
          const auto t1 = std::chrono::steady_clock::now();
          if (!std::holds_alternative<flsa::service::AlignResponse>(
                  response)) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
      } catch (const std::exception&) {
        errors.fetch_add(per_client, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  LoadRow row;
  row.connections = connections;
  row.requests = all.size();
  row.wall_s = wall;
  row.rps = wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;
  row.latency = flsa::latency_quantiles(all);
  row.errors = errors.load();
  return row;
}

/// Outcome of the faulty-network section: requests pushed through a
/// chaos fault plan by retrying clients, plus the client.retry.* counter
/// deltas that show what the recovery cost.
struct FaultyRun {
  std::size_t requests = 0;
  std::size_t succeeded = 0;       ///< ALIGN_OK after <= max_attempts
  std::size_t typed_failures = 0;  ///< typed error/exception terminations
  std::uint64_t retry_attempts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t recovered = 0;
  std::uint64_t exhausted = 0;
};

FaultyRun run_faulty(std::uint16_t port,
                     const flsa::service::AlignRequest& prototype,
                     unsigned connections, std::size_t per_client) {
  const std::uint64_t attempts0 =
      flsa::obs::metrics().counter("client.retry.attempts").value();
  const std::uint64_t reconnects0 =
      flsa::obs::metrics().counter("client.retry.reconnects").value();
  const std::uint64_t recovered0 =
      flsa::obs::metrics().counter("client.retry.recovered").value();
  const std::uint64_t exhausted0 =
      flsa::obs::metrics().counter("client.retry.exhausted").value();

  std::atomic<std::size_t> succeeded{0}, typed_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      flsa::service::RetryPolicy policy;
      policy.max_attempts = 8;
      policy.base_delay = std::chrono::milliseconds(1);
      policy.max_delay = std::chrono::milliseconds(50);
      policy.seed = 0xFEED + c;
      flsa::service::Client client;
      try {
        client.connect("127.0.0.1", port);
      } catch (const std::exception&) {
        typed_failures.fetch_add(per_client, std::memory_order_relaxed);
        return;
      }
      for (std::size_t i = 0; i < per_client; ++i) {
        flsa::service::AlignRequest request = prototype;
        request.request_id = 0;
        try {
          const flsa::service::Response response =
              client.call_with_retry(std::move(request), policy);
          if (std::holds_alternative<flsa::service::AlignResponse>(
                  response)) {
            succeeded.fetch_add(1, std::memory_order_relaxed);
          } else {
            typed_failures.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          // TransportError after exhausted retries, or a ProtocolError
          // from a corrupt fault — typed either way.
          typed_failures.fetch_add(1, std::memory_order_relaxed);
          client.close();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  FaultyRun run;
  run.requests = static_cast<std::size_t>(connections) * per_client;
  run.succeeded = succeeded.load();
  run.typed_failures = typed_failures.load();
  run.retry_attempts =
      flsa::obs::metrics().counter("client.retry.attempts").value() -
      attempts0;
  run.reconnects =
      flsa::obs::metrics().counter("client.retry.reconnects").value() -
      reconnects0;
  run.recovered =
      flsa::obs::metrics().counter("client.retry.recovered").value() -
      recovered0;
  run.exhausted =
      flsa::obs::metrics().counter("client.retry.exhausted").value() -
      exhausted0;
  return run;
}

/// One router-fronted fleet size: the closed-loop rows per connection
/// level plus the router counter deltas that show how the front tier
/// behaved (hedges fired, batches coalesced, failovers needed).
struct RouterTier {
  std::size_t backends = 0;
  std::vector<LoadRow> rows;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t coalesce_batches = 0;
  std::uint64_t coalesce_jobs = 0;
  std::uint64_t failovers = 0;

  /// Best throughput over the connection sweep — the tier's capacity.
  double peak_rps() const {
    double best = 0.0;
    for (const LoadRow& row : rows) best = std::max(best, row.rps);
    return best;
  }
};

/// Spins up `backend_count` single-worker backends behind one router and
/// drives the router with the closed-loop sweep. Single-worker backends
/// make the scaling story honest: each backend contributes one core of
/// alignment capacity, so fleet throughput should track fleet size until
/// the host runs out of cores.
RouterTier run_router_tier(std::size_t backend_count,
                           const flsa::service::AlignRequest& prototype,
                           const std::vector<unsigned>& connection_levels,
                           std::size_t total_requests) {
  namespace obs = flsa::obs;
  const std::uint64_t hedges0 =
      obs::metrics().counter("router.hedge.issued").value();
  const std::uint64_t won0 = obs::metrics().counter("router.hedge.won").value();
  const std::uint64_t batches0 =
      obs::metrics().counter("router.coalesce.batches").value();
  const std::uint64_t jobs0 =
      obs::metrics().counter("router.coalesce.jobs").value();
  const std::uint64_t failovers0 =
      obs::metrics().counter("router.failovers").value();

  std::vector<std::unique_ptr<flsa::service::AlignmentServer>> backends;
  flsa::router::RouterConfig router_config;
  for (std::size_t i = 0; i < backend_count; ++i) {
    flsa::service::ServiceConfig backend_config;
    backend_config.workers = 1;
    backend_config.queue_capacity = 256;
    backends.push_back(
        std::make_unique<flsa::service::AlignmentServer>(backend_config));
    backends.back()->start();
    router_config.backends.push_back({"127.0.0.1", backends.back()->port()});
  }
  flsa::router::Router router(router_config);
  router.start();

  RouterTier tier;
  tier.backends = backend_count;
  for (unsigned connections : connection_levels) {
    const std::size_t per_client =
        std::max<std::size_t>(8, total_requests / connections);
    tier.rows.push_back(
        run_closed_loop(router.port(), prototype, connections, per_client));
  }
  router.stop();
  for (auto& backend : backends) backend->stop();

  tier.hedges_issued =
      obs::metrics().counter("router.hedge.issued").value() - hedges0;
  tier.hedges_won = obs::metrics().counter("router.hedge.won").value() - won0;
  tier.coalesce_batches =
      obs::metrics().counter("router.coalesce.batches").value() - batches0;
  tier.coalesce_jobs =
      obs::metrics().counter("router.coalesce.jobs").value() - jobs0;
  tier.failovers =
      obs::metrics().counter("router.failovers").value() - failovers0;
  return tier;
}

void write_load_rows(std::ofstream& out, const std::vector<LoadRow>& rows,
                     const char* indent) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& r = rows[i];
    out << indent << "{\"connections\": " << r.connections
        << ", \"requests\": " << r.requests << ", \"wall_s\": " << r.wall_s
        << ", \"throughput_rps\": " << r.rps << ", \"p50_ms\": "
        << r.latency.p50 << ", \"p95_ms\": " << r.latency.p95
        << ", \"p99_ms\": " << r.latency.p99 << ", \"max_ms\": "
        << r.latency.max << ", \"errors\": " << r.errors << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

void write_json(const std::string& path, unsigned workers,
                std::size_t pair_length, const std::vector<LoadRow>& rows,
                std::size_t overload_accepted, std::size_t overload_rejected,
                const std::string& fault_plan, const FaultyRun& faulty,
                const std::vector<RouterTier>& tiers, double speedup_4_vs_1) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"workers\": " << workers
      << ",\n  \"pair_length\": " << pair_length << ",\n  \"load\": [\n";
  write_load_rows(out, rows, "    ");
  out << "  ],\n  \"overload\": {\"accepted\": " << overload_accepted
      << ", \"rejected_overloaded\": " << overload_rejected << "},\n"
      << "  \"faulty\": {\"fault_plan\": \"" << fault_plan
      << "\", \"requests\": " << faulty.requests
      << ", \"succeeded\": " << faulty.succeeded
      << ", \"typed_failures\": " << faulty.typed_failures
      << ", \"retry_attempts\": " << faulty.retry_attempts
      << ", \"reconnects\": " << faulty.reconnects
      << ", \"recovered\": " << faulty.recovered
      << ", \"exhausted\": " << faulty.exhausted << "},\n"
      << "  \"multi_backend\": {\n    \"tiers\": [\n";
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const RouterTier& tier = tiers[t];
    out << "      {\"backends\": " << tier.backends
        << ", \"peak_rps\": " << tier.peak_rps()
        << ", \"hedges_issued\": " << tier.hedges_issued
        << ", \"hedges_won\": " << tier.hedges_won
        << ", \"coalesce_batches\": " << tier.coalesce_batches
        << ", \"coalesce_jobs\": " << tier.coalesce_jobs
        << ", \"failovers\": " << tier.failovers << ", \"load\": [\n";
    write_load_rows(out, tier.rows, "        ");
    out << "      ]}" << (t + 1 < tiers.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"speedup_4_backends_vs_1\": " << speedup_4_vs_1
      << "\n  }\n}\n";
}

}  // namespace

int main() {
  std::cout << "=== E15: service closed-loop load ===\n\n";

  // Small-request serving workload: the daemon shape matters most when
  // per-request work is modest and arrival concurrency is high.
  const std::size_t pair_length = 256;
  const flsa::SequencePair pair =
      flsa::bench::sized_workload(pair_length).make();
  flsa::service::AlignRequest prototype;
  prototype.matrix = flsa::service::WireMatrix::kMdm78;
  prototype.gap_extend = -10;
  prototype.a = pair.a.to_string();
  prototype.b = pair.b.to_string();

  flsa::service::ServiceConfig config;
  config.queue_capacity = 256;
  flsa::service::AlignmentServer server(config);
  server.start();
  const unsigned workers = config.workers != 0 ? config.workers
                                               : flsa::default_thread_count();
  std::cout << "server on 127.0.0.1:" << server.port() << " (workers="
            << workers << ", queue=" << config.queue_capacity << ")\n\n";

  const std::size_t total_requests = 2048;
  std::vector<LoadRow> rows;
  flsa::Table table({"conns", "requests", "wall s", "req/s", "p50 ms",
                     "p95 ms", "p99 ms", "max ms", "errors"});
  for (unsigned connections : {1u, 8u, 32u, 64u}) {
    const std::size_t per_client =
        std::max<std::size_t>(8, total_requests / connections);
    const LoadRow row =
        run_closed_loop(server.port(), prototype, connections, per_client);
    rows.push_back(row);
    table.add_row({std::to_string(row.connections),
                   std::to_string(row.requests),
                   flsa::Table::num(row.wall_s), flsa::Table::num(row.rps),
                   flsa::Table::num(row.latency.p50),
                   flsa::Table::num(row.latency.p95),
                   flsa::Table::num(row.latency.p99),
                   flsa::Table::num(row.latency.max),
                   std::to_string(row.errors)});
  }
  table.print(std::cout);
  std::cout << "\nClosed-loop clients: offered load rises with connections"
               " until the worker pool\nsaturates; past that, added"
               " connections buy queueing latency, not throughput\n(the"
               " shape Little's law predicts).\n";
  server.stop();

  // ---- Admission control under a deliberately tiny queue. ----
  std::cout << "\n=== overload: queue capacity 1, pipelined burst ===\n\n";
  flsa::service::ServiceConfig tiny;
  tiny.queue_capacity = 1;
  tiny.workers = 1;
  flsa::service::AlignmentServer tiny_server(tiny);
  tiny_server.start();
  std::size_t accepted = 0, rejected = 0, other = 0;
  {
    flsa::service::Client client;
    client.connect("127.0.0.1", tiny_server.port());
    const std::size_t burst = 32;
    for (std::size_t i = 0; i < burst; ++i) {
      flsa::service::AlignRequest request = prototype;
      request.request_id = 0;
      client.send(std::move(request));
    }
    for (std::size_t i = 0; i < burst; ++i) {
      const flsa::service::Response response = client.receive();
      if (std::holds_alternative<flsa::service::AlignResponse>(response)) {
        ++accepted;
      } else if (const auto* err =
                     std::get_if<flsa::service::ErrorResponse>(&response);
                 err != nullptr &&
                 err->code == flsa::service::ErrorCode::kOverloaded) {
        ++rejected;
      } else {
        ++other;
      }
    }
  }
  tiny_server.stop();
  std::cout << "burst of 32 -> accepted " << accepted << ", OVERLOADED "
            << rejected << ", other " << other
            << "\n(bounded queue + typed rejection instead of a hang: the"
               " client can back off)\n";

  // ---- Faulty network: the chaos plan vs the retry/backoff layer. ----
  std::cout << "\n=== faulty network: fault plan vs call_with_retry ===\n\n";
  const std::string fault_plan_spec =
      "seed=42,reject=0.15,drop=0.03,delay=0.05:2";
  flsa::service::ServiceConfig faulty_config;
  faulty_config.queue_capacity = 256;
  faulty_config.fault_plan = flsa::service::parse_fault_plan(fault_plan_spec);
  flsa::service::AlignmentServer faulty_server(faulty_config);
  faulty_server.start();
  const FaultyRun faulty =
      run_faulty(faulty_server.port(), prototype, 8, 64);
  faulty_server.stop();
  std::cout << "plan " << fault_plan_spec << "\n"
            << faulty.requests << " requests -> " << faulty.succeeded
            << " succeeded, " << faulty.typed_failures
            << " typed failures\nretry attempts " << faulty.retry_attempts
            << ", reconnects " << faulty.reconnects << ", recovered "
            << faulty.recovered << ", exhausted " << faulty.exhausted
            << "\n(decorrelated-jitter backoff turns injected overload and"
               " dropped connections\ninto latency, not errors)\n";

  // ---- Router-fronted fleets: does capacity track fleet size? ----
  std::cout << "\n=== router front tier: 1 router x {1,2,4} backends ===\n\n";
  // Heavier pairs than the single-server sweep: per-request DP work must
  // dominate the extra wire hop, so fleet throughput measures backend
  // capacity (what adding backends buys) rather than loopback latency.
  const std::size_t router_pair_length = 512;
  const flsa::SequencePair router_pair =
      flsa::bench::sized_workload(router_pair_length).make();
  flsa::service::AlignRequest router_prototype;
  router_prototype.matrix = flsa::service::WireMatrix::kMdm78;
  router_prototype.gap_extend = -10;
  router_prototype.a = router_pair.a.to_string();
  router_prototype.b = router_pair.b.to_string();
  const std::vector<unsigned> router_connections = {1u, 8u, 32u, 64u};
  std::vector<RouterTier> tiers;
  flsa::Table router_table({"backends", "conns", "req/s", "p50 ms", "p95 ms",
                            "p99 ms", "errors"});
  for (std::size_t backend_count : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const RouterTier tier = run_router_tier(backend_count, router_prototype,
                                            router_connections, 1024);
    for (const LoadRow& row : tier.rows) {
      router_table.add_row({std::to_string(tier.backends),
                            std::to_string(row.connections),
                            flsa::Table::num(row.rps),
                            flsa::Table::num(row.latency.p50),
                            flsa::Table::num(row.latency.p95),
                            flsa::Table::num(row.latency.p99),
                            std::to_string(row.errors)});
    }
    tiers.push_back(tier);
  }
  router_table.print(std::cout);
  const double speedup_4_vs_1 =
      tiers.front().peak_rps() > 0.0
          ? tiers.back().peak_rps() / tiers.front().peak_rps()
          : 0.0;
  std::cout << "\nper-tier router activity:\n";
  for (const RouterTier& tier : tiers) {
    std::cout << "  " << tier.backends << " backend(s): hedges "
              << tier.hedges_issued << " (won " << tier.hedges_won
              << "), coalesced " << tier.coalesce_jobs << " jobs into "
              << tier.coalesce_batches << " batches, failovers "
              << tier.failovers << "\n";
  }
  std::cout << "speedup 4 backends vs 1 (peak req/s): "
            << flsa::Table::num(speedup_4_vs_1)
            << "\n(single-worker backends: fleet capacity should track"
               " fleet size until the host\nruns out of cores — the CI"
               " gate asserts >= 2.5x on 4-vCPU runners)\n";

  write_json("BENCH_service.json", workers, pair_length, rows, accepted,
             rejected, fault_plan_spec, faulty, tiers, speedup_4_vs_1);
  std::cout << "\nwrote BENCH_service.json\n";
  return 0;
}
