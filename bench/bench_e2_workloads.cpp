// E2 — the workload suite (stand-in for paper Table 3).
//
// The paper evaluates on real protein/DNA pairs of growing size; this bench
// materializes the synthetic equivalents (documented in DESIGN.md), and
// prints their defining properties: lengths, divergence, optimal global
// score, and identity of the optimal alignment.
#include <iostream>

#include "benchlib/workloads.hpp"
#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "=== E2: workload suite (stand-in for paper Table 3) ===\n\n";
  flsa::Table table({"pair", "alphabet", "m", "n", "mutation rate",
                     "optimal score", "identity %"});
  for (const flsa::bench::Workload& w : flsa::bench::standard_suite(8000)) {
    const flsa::SequencePair pair = w.make();
    flsa::FastLsaOptions options;
    options.k = 8;
    options.base_case_cells = 1u << 18;
    const flsa::Alignment aln =
        flsa::fastlsa_align(pair.a, pair.b, w.scheme(), options);
    table.add_row({w.name, w.protein ? "protein" : "dna",
                   std::to_string(pair.a.size()),
                   std::to_string(pair.b.size()),
                   flsa::Table::num(w.divergence),
                   std::to_string(aln.score),
                   flsa::Table::num(100.0 * aln.identity(), 1)});
  }
  // One DNA pair for contrast, like the paper's mixed inputs.
  const flsa::bench::Workload dna = flsa::bench::sized_workload(4000, false);
  const flsa::SequencePair pair = dna.make();
  flsa::FastLsaOptions options;
  options.base_case_cells = 1u << 18;
  const flsa::Alignment aln =
      flsa::fastlsa_align(pair.a, pair.b, dna.scheme(), options);
  table.add_row({dna.name, "dna", std::to_string(pair.a.size()),
                 std::to_string(pair.b.size()),
                 flsa::Table::num(dna.divergence),
                 std::to_string(aln.score),
                 flsa::Table::num(100.0 * aln.identity(), 1)});
  table.print(std::cout);
  std::cout << "\nAll pairs are deterministic functions of (name, seed); "
               "identities sit in the homologous range the paper's real "
               "pairs occupy.\n";
  return 0;
}
