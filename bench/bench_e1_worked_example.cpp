// E1 — the paper's worked example (Table 1 + Figure 1).
//
// Reproduces the Dayhoff/MDM78 scoring excerpt, the DPM of TLDKLLKD vs
// TDVLKAD under gap penalty -10, the optimal score 82, and the optimal
// alignment, and verifies every algorithm in the library derives them.
#include <cstdio>
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/table.hpp"

namespace {

void print_scoring_excerpt() {
  using flsa::scoring::mdm78;
  const char letters[] = {'A', 'D', 'K', 'L', 'T', 'V'};
  flsa::Table table({"", "A", "D", "K", "L", "T", "V"});
  for (char row : letters) {
    std::vector<std::string> cells;
    cells.push_back(std::string(1, row));
    for (char col : letters) {
      cells.push_back(std::to_string(mdm78().score(row, col)));
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Paper Table 1 (MDM78 excerpt, reconstructed):\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== E1: worked example (paper Table 1 / Figure 1) ===\n\n";
  print_scoring_excerpt();

  const flsa::Sequence a(flsa::Alphabet::protein(), "TLDKLLKD", "query");
  const flsa::Sequence b(flsa::Alphabet::protein(), "TDVLKAD", "target");
  const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();

  std::cout << "\nAligning " << a.to_string() << " x " << b.to_string()
            << " (gap penalty -10):\n\n";

  flsa::Table results({"algorithm", "score", "alignment"});
  const flsa::Alignment fm = flsa::full_matrix_align(a, b, scheme);
  results.add_row({"full-matrix", std::to_string(fm.score),
                   fm.gapped_a + " / " + fm.gapped_b});
  const flsa::Alignment h = flsa::hirschberg_align(a, b, scheme);
  results.add_row({"hirschberg", std::to_string(h.score),
                   h.gapped_a + " / " + h.gapped_b});
  flsa::FastLsaOptions options;
  options.k = 2;
  options.base_case_cells = 16;
  const flsa::Alignment fl = flsa::fastlsa_align(a, b, scheme, options);
  results.add_row({"fastlsa(k=2,BM=16)", std::to_string(fl.score),
                   fl.gapped_a + " / " + fl.gapped_b});
  results.print(std::cout);

  const flsa::CoOptimalAnalysis co =
      flsa::count_optimal_paths(a, b, scheme);
  std::cout << "\nOptimal alignment (paper reports score 82; "
            << co.path_count
            << " optimal path, matching the paper's \"single optimal"
               " path\" note):\n"
            << fm.pretty() << "\n";

  const bool ok = fm.score == 82 && h.score == 82 && fl.score == 82;
  std::cout << (ok ? "OK: all algorithms reproduce the paper's score 82\n"
                   : "MISMATCH: expected score 82\n");
  return ok ? 0 : 1;
}
