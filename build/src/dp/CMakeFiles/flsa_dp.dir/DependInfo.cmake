
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/alignment.cpp" "src/dp/CMakeFiles/flsa_dp.dir/alignment.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/alignment.cpp.o.d"
  "/root/repo/src/dp/antidiagonal.cpp" "src/dp/CMakeFiles/flsa_dp.dir/antidiagonal.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/antidiagonal.cpp.o.d"
  "/root/repo/src/dp/banded.cpp" "src/dp/CMakeFiles/flsa_dp.dir/banded.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/banded.cpp.o.d"
  "/root/repo/src/dp/cooptimal.cpp" "src/dp/CMakeFiles/flsa_dp.dir/cooptimal.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/cooptimal.cpp.o.d"
  "/root/repo/src/dp/format.cpp" "src/dp/CMakeFiles/flsa_dp.dir/format.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/format.cpp.o.d"
  "/root/repo/src/dp/fullmatrix.cpp" "src/dp/CMakeFiles/flsa_dp.dir/fullmatrix.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/fullmatrix.cpp.o.d"
  "/root/repo/src/dp/gotoh.cpp" "src/dp/CMakeFiles/flsa_dp.dir/gotoh.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/gotoh.cpp.o.d"
  "/root/repo/src/dp/kernel.cpp" "src/dp/CMakeFiles/flsa_dp.dir/kernel.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/kernel.cpp.o.d"
  "/root/repo/src/dp/local.cpp" "src/dp/CMakeFiles/flsa_dp.dir/local.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/local.cpp.o.d"
  "/root/repo/src/dp/packed_traceback.cpp" "src/dp/CMakeFiles/flsa_dp.dir/packed_traceback.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/packed_traceback.cpp.o.d"
  "/root/repo/src/dp/path.cpp" "src/dp/CMakeFiles/flsa_dp.dir/path.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/path.cpp.o.d"
  "/root/repo/src/dp/query_profile.cpp" "src/dp/CMakeFiles/flsa_dp.dir/query_profile.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/query_profile.cpp.o.d"
  "/root/repo/src/dp/semiglobal.cpp" "src/dp/CMakeFiles/flsa_dp.dir/semiglobal.cpp.o" "gcc" "src/dp/CMakeFiles/flsa_dp.dir/semiglobal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scoring/CMakeFiles/flsa_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/flsa_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
