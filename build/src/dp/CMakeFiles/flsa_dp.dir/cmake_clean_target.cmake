file(REMOVE_RECURSE
  "libflsa_dp.a"
)
