# Empty dependencies file for flsa_dp.
# This may be replaced when dependencies are built.
