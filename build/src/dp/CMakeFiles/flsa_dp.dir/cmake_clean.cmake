file(REMOVE_RECURSE
  "CMakeFiles/flsa_dp.dir/alignment.cpp.o"
  "CMakeFiles/flsa_dp.dir/alignment.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/antidiagonal.cpp.o"
  "CMakeFiles/flsa_dp.dir/antidiagonal.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/banded.cpp.o"
  "CMakeFiles/flsa_dp.dir/banded.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/cooptimal.cpp.o"
  "CMakeFiles/flsa_dp.dir/cooptimal.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/format.cpp.o"
  "CMakeFiles/flsa_dp.dir/format.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/fullmatrix.cpp.o"
  "CMakeFiles/flsa_dp.dir/fullmatrix.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/gotoh.cpp.o"
  "CMakeFiles/flsa_dp.dir/gotoh.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/kernel.cpp.o"
  "CMakeFiles/flsa_dp.dir/kernel.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/local.cpp.o"
  "CMakeFiles/flsa_dp.dir/local.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/packed_traceback.cpp.o"
  "CMakeFiles/flsa_dp.dir/packed_traceback.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/path.cpp.o"
  "CMakeFiles/flsa_dp.dir/path.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/query_profile.cpp.o"
  "CMakeFiles/flsa_dp.dir/query_profile.cpp.o.d"
  "CMakeFiles/flsa_dp.dir/semiglobal.cpp.o"
  "CMakeFiles/flsa_dp.dir/semiglobal.cpp.o.d"
  "libflsa_dp.a"
  "libflsa_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
