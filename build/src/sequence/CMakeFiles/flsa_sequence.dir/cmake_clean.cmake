file(REMOVE_RECURSE
  "CMakeFiles/flsa_sequence.dir/alphabet.cpp.o"
  "CMakeFiles/flsa_sequence.dir/alphabet.cpp.o.d"
  "CMakeFiles/flsa_sequence.dir/fasta.cpp.o"
  "CMakeFiles/flsa_sequence.dir/fasta.cpp.o.d"
  "CMakeFiles/flsa_sequence.dir/fastq.cpp.o"
  "CMakeFiles/flsa_sequence.dir/fastq.cpp.o.d"
  "CMakeFiles/flsa_sequence.dir/generate.cpp.o"
  "CMakeFiles/flsa_sequence.dir/generate.cpp.o.d"
  "CMakeFiles/flsa_sequence.dir/sequence.cpp.o"
  "CMakeFiles/flsa_sequence.dir/sequence.cpp.o.d"
  "libflsa_sequence.a"
  "libflsa_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
