file(REMOVE_RECURSE
  "libflsa_sequence.a"
)
