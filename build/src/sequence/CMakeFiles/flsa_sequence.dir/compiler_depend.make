# Empty compiler generated dependencies file for flsa_sequence.
# This may be replaced when dependencies are built.
