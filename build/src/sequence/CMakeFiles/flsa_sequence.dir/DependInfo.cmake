
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sequence/alphabet.cpp" "src/sequence/CMakeFiles/flsa_sequence.dir/alphabet.cpp.o" "gcc" "src/sequence/CMakeFiles/flsa_sequence.dir/alphabet.cpp.o.d"
  "/root/repo/src/sequence/fasta.cpp" "src/sequence/CMakeFiles/flsa_sequence.dir/fasta.cpp.o" "gcc" "src/sequence/CMakeFiles/flsa_sequence.dir/fasta.cpp.o.d"
  "/root/repo/src/sequence/fastq.cpp" "src/sequence/CMakeFiles/flsa_sequence.dir/fastq.cpp.o" "gcc" "src/sequence/CMakeFiles/flsa_sequence.dir/fastq.cpp.o.d"
  "/root/repo/src/sequence/generate.cpp" "src/sequence/CMakeFiles/flsa_sequence.dir/generate.cpp.o" "gcc" "src/sequence/CMakeFiles/flsa_sequence.dir/generate.cpp.o.d"
  "/root/repo/src/sequence/sequence.cpp" "src/sequence/CMakeFiles/flsa_sequence.dir/sequence.cpp.o" "gcc" "src/sequence/CMakeFiles/flsa_sequence.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
