# Empty compiler generated dependencies file for flsa_core.
# This may be replaced when dependencies are built.
