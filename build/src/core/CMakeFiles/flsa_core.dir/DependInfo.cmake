
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/flsa_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/aligner.cpp" "src/core/CMakeFiles/flsa_core.dir/aligner.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/aligner.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/flsa_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/fastlsa.cpp" "src/core/CMakeFiles/flsa_core.dir/fastlsa.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/fastlsa.cpp.o.d"
  "/root/repo/src/core/local_align.cpp" "src/core/CMakeFiles/flsa_core.dir/local_align.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/local_align.cpp.o.d"
  "/root/repo/src/core/semiglobal.cpp" "src/core/CMakeFiles/flsa_core.dir/semiglobal.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/semiglobal.cpp.o.d"
  "/root/repo/src/core/textutil.cpp" "src/core/CMakeFiles/flsa_core.dir/textutil.cpp.o" "gcc" "src/core/CMakeFiles/flsa_core.dir/textutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dp/CMakeFiles/flsa_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/hirschberg/CMakeFiles/flsa_hirschberg.dir/DependInfo.cmake"
  "/root/repo/build/src/simexec/CMakeFiles/flsa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/flsa_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/flsa_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
