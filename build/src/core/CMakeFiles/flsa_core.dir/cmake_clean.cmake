file(REMOVE_RECURSE
  "CMakeFiles/flsa_core.dir/advisor.cpp.o"
  "CMakeFiles/flsa_core.dir/advisor.cpp.o.d"
  "CMakeFiles/flsa_core.dir/aligner.cpp.o"
  "CMakeFiles/flsa_core.dir/aligner.cpp.o.d"
  "CMakeFiles/flsa_core.dir/budget.cpp.o"
  "CMakeFiles/flsa_core.dir/budget.cpp.o.d"
  "CMakeFiles/flsa_core.dir/fastlsa.cpp.o"
  "CMakeFiles/flsa_core.dir/fastlsa.cpp.o.d"
  "CMakeFiles/flsa_core.dir/local_align.cpp.o"
  "CMakeFiles/flsa_core.dir/local_align.cpp.o.d"
  "CMakeFiles/flsa_core.dir/semiglobal.cpp.o"
  "CMakeFiles/flsa_core.dir/semiglobal.cpp.o.d"
  "CMakeFiles/flsa_core.dir/textutil.cpp.o"
  "CMakeFiles/flsa_core.dir/textutil.cpp.o.d"
  "libflsa_core.a"
  "libflsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
