file(REMOVE_RECURSE
  "libflsa_core.a"
)
