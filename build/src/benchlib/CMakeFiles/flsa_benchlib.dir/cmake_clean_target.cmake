file(REMOVE_RECURSE
  "libflsa_benchlib.a"
)
