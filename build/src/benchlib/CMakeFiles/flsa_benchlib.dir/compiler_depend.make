# Empty compiler generated dependencies file for flsa_benchlib.
# This may be replaced when dependencies are built.
