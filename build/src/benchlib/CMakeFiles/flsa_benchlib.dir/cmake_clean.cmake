file(REMOVE_RECURSE
  "CMakeFiles/flsa_benchlib.dir/results.cpp.o"
  "CMakeFiles/flsa_benchlib.dir/results.cpp.o.d"
  "CMakeFiles/flsa_benchlib.dir/runner.cpp.o"
  "CMakeFiles/flsa_benchlib.dir/runner.cpp.o.d"
  "CMakeFiles/flsa_benchlib.dir/workloads.cpp.o"
  "CMakeFiles/flsa_benchlib.dir/workloads.cpp.o.d"
  "libflsa_benchlib.a"
  "libflsa_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
