
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/results.cpp" "src/benchlib/CMakeFiles/flsa_benchlib.dir/results.cpp.o" "gcc" "src/benchlib/CMakeFiles/flsa_benchlib.dir/results.cpp.o.d"
  "/root/repo/src/benchlib/runner.cpp" "src/benchlib/CMakeFiles/flsa_benchlib.dir/runner.cpp.o" "gcc" "src/benchlib/CMakeFiles/flsa_benchlib.dir/runner.cpp.o.d"
  "/root/repo/src/benchlib/workloads.cpp" "src/benchlib/CMakeFiles/flsa_benchlib.dir/workloads.cpp.o" "gcc" "src/benchlib/CMakeFiles/flsa_benchlib.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sequence/CMakeFiles/flsa_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/flsa_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
