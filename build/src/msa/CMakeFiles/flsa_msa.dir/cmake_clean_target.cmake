file(REMOVE_RECURSE
  "libflsa_msa.a"
)
