file(REMOVE_RECURSE
  "CMakeFiles/flsa_msa.dir/center_star.cpp.o"
  "CMakeFiles/flsa_msa.dir/center_star.cpp.o.d"
  "CMakeFiles/flsa_msa.dir/profile.cpp.o"
  "CMakeFiles/flsa_msa.dir/profile.cpp.o.d"
  "CMakeFiles/flsa_msa.dir/progressive.cpp.o"
  "CMakeFiles/flsa_msa.dir/progressive.cpp.o.d"
  "libflsa_msa.a"
  "libflsa_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
