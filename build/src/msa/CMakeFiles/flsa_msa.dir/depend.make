# Empty dependencies file for flsa_msa.
# This may be replaced when dependencies are built.
