# Empty compiler generated dependencies file for flsa_msa.
# This may be replaced when dependencies are built.
