file(REMOVE_RECURSE
  "libflsa_parallel.a"
)
