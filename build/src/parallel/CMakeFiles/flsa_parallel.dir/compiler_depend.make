# Empty compiler generated dependencies file for flsa_parallel.
# This may be replaced when dependencies are built.
