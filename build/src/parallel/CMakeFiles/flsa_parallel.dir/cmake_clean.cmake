file(REMOVE_RECURSE
  "CMakeFiles/flsa_parallel.dir/batch.cpp.o"
  "CMakeFiles/flsa_parallel.dir/batch.cpp.o.d"
  "CMakeFiles/flsa_parallel.dir/parallel_fastlsa.cpp.o"
  "CMakeFiles/flsa_parallel.dir/parallel_fastlsa.cpp.o.d"
  "CMakeFiles/flsa_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/flsa_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/flsa_parallel.dir/wavefront.cpp.o"
  "CMakeFiles/flsa_parallel.dir/wavefront.cpp.o.d"
  "libflsa_parallel.a"
  "libflsa_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
