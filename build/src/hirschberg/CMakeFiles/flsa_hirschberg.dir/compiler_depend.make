# Empty compiler generated dependencies file for flsa_hirschberg.
# This may be replaced when dependencies are built.
