file(REMOVE_RECURSE
  "libflsa_hirschberg.a"
)
