file(REMOVE_RECURSE
  "CMakeFiles/flsa_hirschberg.dir/hirschberg.cpp.o"
  "CMakeFiles/flsa_hirschberg.dir/hirschberg.cpp.o.d"
  "CMakeFiles/flsa_hirschberg.dir/hirschberg_affine.cpp.o"
  "CMakeFiles/flsa_hirschberg.dir/hirschberg_affine.cpp.o.d"
  "libflsa_hirschberg.a"
  "libflsa_hirschberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_hirschberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
