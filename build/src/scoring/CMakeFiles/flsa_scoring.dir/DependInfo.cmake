
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scoring/builtin.cpp" "src/scoring/CMakeFiles/flsa_scoring.dir/builtin.cpp.o" "gcc" "src/scoring/CMakeFiles/flsa_scoring.dir/builtin.cpp.o.d"
  "/root/repo/src/scoring/matrix.cpp" "src/scoring/CMakeFiles/flsa_scoring.dir/matrix.cpp.o" "gcc" "src/scoring/CMakeFiles/flsa_scoring.dir/matrix.cpp.o.d"
  "/root/repo/src/scoring/matrix_io.cpp" "src/scoring/CMakeFiles/flsa_scoring.dir/matrix_io.cpp.o" "gcc" "src/scoring/CMakeFiles/flsa_scoring.dir/matrix_io.cpp.o.d"
  "/root/repo/src/scoring/scheme.cpp" "src/scoring/CMakeFiles/flsa_scoring.dir/scheme.cpp.o" "gcc" "src/scoring/CMakeFiles/flsa_scoring.dir/scheme.cpp.o.d"
  "/root/repo/src/scoring/statistics.cpp" "src/scoring/CMakeFiles/flsa_scoring.dir/statistics.cpp.o" "gcc" "src/scoring/CMakeFiles/flsa_scoring.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sequence/CMakeFiles/flsa_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
