# Empty compiler generated dependencies file for flsa_scoring.
# This may be replaced when dependencies are built.
