file(REMOVE_RECURSE
  "libflsa_scoring.a"
)
