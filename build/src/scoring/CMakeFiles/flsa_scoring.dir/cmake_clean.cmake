file(REMOVE_RECURSE
  "CMakeFiles/flsa_scoring.dir/builtin.cpp.o"
  "CMakeFiles/flsa_scoring.dir/builtin.cpp.o.d"
  "CMakeFiles/flsa_scoring.dir/matrix.cpp.o"
  "CMakeFiles/flsa_scoring.dir/matrix.cpp.o.d"
  "CMakeFiles/flsa_scoring.dir/matrix_io.cpp.o"
  "CMakeFiles/flsa_scoring.dir/matrix_io.cpp.o.d"
  "CMakeFiles/flsa_scoring.dir/scheme.cpp.o"
  "CMakeFiles/flsa_scoring.dir/scheme.cpp.o.d"
  "CMakeFiles/flsa_scoring.dir/statistics.cpp.o"
  "CMakeFiles/flsa_scoring.dir/statistics.cpp.o.d"
  "libflsa_scoring.a"
  "libflsa_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
