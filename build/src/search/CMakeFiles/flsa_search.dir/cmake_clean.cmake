file(REMOVE_RECURSE
  "CMakeFiles/flsa_search.dir/kmer_index.cpp.o"
  "CMakeFiles/flsa_search.dir/kmer_index.cpp.o.d"
  "CMakeFiles/flsa_search.dir/seed_extend.cpp.o"
  "CMakeFiles/flsa_search.dir/seed_extend.cpp.o.d"
  "libflsa_search.a"
  "libflsa_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
