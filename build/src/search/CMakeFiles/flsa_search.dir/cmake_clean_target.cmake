file(REMOVE_RECURSE
  "libflsa_search.a"
)
