# Empty compiler generated dependencies file for flsa_search.
# This may be replaced when dependencies are built.
