file(REMOVE_RECURSE
  "libflsa_support.a"
)
