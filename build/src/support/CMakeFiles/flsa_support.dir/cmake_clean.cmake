file(REMOVE_RECURSE
  "CMakeFiles/flsa_support.dir/cli.cpp.o"
  "CMakeFiles/flsa_support.dir/cli.cpp.o.d"
  "CMakeFiles/flsa_support.dir/csv.cpp.o"
  "CMakeFiles/flsa_support.dir/csv.cpp.o.d"
  "CMakeFiles/flsa_support.dir/prng.cpp.o"
  "CMakeFiles/flsa_support.dir/prng.cpp.o.d"
  "CMakeFiles/flsa_support.dir/stats.cpp.o"
  "CMakeFiles/flsa_support.dir/stats.cpp.o.d"
  "CMakeFiles/flsa_support.dir/table.cpp.o"
  "CMakeFiles/flsa_support.dir/table.cpp.o.d"
  "libflsa_support.a"
  "libflsa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
