# Empty dependencies file for flsa_support.
# This may be replaced when dependencies are built.
