file(REMOVE_RECURSE
  "libflsa_simexec.a"
)
