# Empty compiler generated dependencies file for flsa_simexec.
# This may be replaced when dependencies are built.
