file(REMOVE_RECURSE
  "CMakeFiles/flsa_simexec.dir/gantt.cpp.o"
  "CMakeFiles/flsa_simexec.dir/gantt.cpp.o.d"
  "CMakeFiles/flsa_simexec.dir/recording.cpp.o"
  "CMakeFiles/flsa_simexec.dir/recording.cpp.o.d"
  "CMakeFiles/flsa_simexec.dir/simulate.cpp.o"
  "CMakeFiles/flsa_simexec.dir/simulate.cpp.o.d"
  "CMakeFiles/flsa_simexec.dir/virtual_time.cpp.o"
  "CMakeFiles/flsa_simexec.dir/virtual_time.cpp.o.d"
  "libflsa_simexec.a"
  "libflsa_simexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_simexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
