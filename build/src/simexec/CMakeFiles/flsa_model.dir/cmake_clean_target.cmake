file(REMOVE_RECURSE
  "libflsa_model.a"
)
