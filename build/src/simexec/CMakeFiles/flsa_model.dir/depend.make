# Empty dependencies file for flsa_model.
# This may be replaced when dependencies are built.
