file(REMOVE_RECURSE
  "CMakeFiles/flsa_model.dir/model.cpp.o"
  "CMakeFiles/flsa_model.dir/model.cpp.o.d"
  "libflsa_model.a"
  "libflsa_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
