file(REMOVE_RECURSE
  "CMakeFiles/flsa_generate.dir/flsa_generate.cpp.o"
  "CMakeFiles/flsa_generate.dir/flsa_generate.cpp.o.d"
  "flsa_generate"
  "flsa_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
