# Empty compiler generated dependencies file for flsa_generate.
# This may be replaced when dependencies are built.
