file(REMOVE_RECURSE
  "CMakeFiles/flsa_align.dir/flsa_align.cpp.o"
  "CMakeFiles/flsa_align.dir/flsa_align.cpp.o.d"
  "flsa_align"
  "flsa_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flsa_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
