# Empty compiler generated dependencies file for flsa_align.
# This may be replaced when dependencies are built.
