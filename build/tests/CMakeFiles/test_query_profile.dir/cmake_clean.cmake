file(REMOVE_RECURSE
  "CMakeFiles/test_query_profile.dir/test_query_profile.cpp.o"
  "CMakeFiles/test_query_profile.dir/test_query_profile.cpp.o.d"
  "test_query_profile"
  "test_query_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
