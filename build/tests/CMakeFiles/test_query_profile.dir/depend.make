# Empty dependencies file for test_query_profile.
# This may be replaced when dependencies are built.
