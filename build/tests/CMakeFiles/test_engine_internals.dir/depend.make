# Empty dependencies file for test_engine_internals.
# This may be replaced when dependencies are built.
