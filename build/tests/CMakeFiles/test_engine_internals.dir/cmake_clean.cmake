file(REMOVE_RECURSE
  "CMakeFiles/test_engine_internals.dir/test_engine_internals.cpp.o"
  "CMakeFiles/test_engine_internals.dir/test_engine_internals.cpp.o.d"
  "test_engine_internals"
  "test_engine_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
