# Empty compiler generated dependencies file for test_gantt.
# This may be replaced when dependencies are built.
