file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/test_kernel.cpp.o"
  "CMakeFiles/test_kernel.dir/test_kernel.cpp.o.d"
  "test_kernel"
  "test_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
