# Empty compiler generated dependencies file for test_kernel.
# This may be replaced when dependencies are built.
