# Empty dependencies file for test_search.
# This may be replaced when dependencies are built.
