# Empty compiler generated dependencies file for test_parallel_fastlsa.
# This may be replaced when dependencies are built.
