file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_fastlsa.dir/test_parallel_fastlsa.cpp.o"
  "CMakeFiles/test_parallel_fastlsa.dir/test_parallel_fastlsa.cpp.o.d"
  "test_parallel_fastlsa"
  "test_parallel_fastlsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_fastlsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
