# Empty dependencies file for test_gotoh.
# This may be replaced when dependencies are built.
