file(REMOVE_RECURSE
  "CMakeFiles/test_gotoh.dir/test_gotoh.cpp.o"
  "CMakeFiles/test_gotoh.dir/test_gotoh.cpp.o.d"
  "test_gotoh"
  "test_gotoh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gotoh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
