# Empty compiler generated dependencies file for test_wavefront.
# This may be replaced when dependencies are built.
