file(REMOVE_RECURSE
  "CMakeFiles/test_wavefront.dir/test_wavefront.cpp.o"
  "CMakeFiles/test_wavefront.dir/test_wavefront.cpp.o.d"
  "test_wavefront"
  "test_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
