file(REMOVE_RECURSE
  "CMakeFiles/test_textutil.dir/test_textutil.cpp.o"
  "CMakeFiles/test_textutil.dir/test_textutil.cpp.o.d"
  "test_textutil"
  "test_textutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
