# Empty dependencies file for test_textutil.
# This may be replaced when dependencies are built.
