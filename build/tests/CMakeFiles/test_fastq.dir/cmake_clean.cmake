file(REMOVE_RECURSE
  "CMakeFiles/test_fastq.dir/test_fastq.cpp.o"
  "CMakeFiles/test_fastq.dir/test_fastq.cpp.o.d"
  "test_fastq"
  "test_fastq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
