# Empty dependencies file for test_fastq.
# This may be replaced when dependencies are built.
