# Empty compiler generated dependencies file for test_simexec.
# This may be replaced when dependencies are built.
