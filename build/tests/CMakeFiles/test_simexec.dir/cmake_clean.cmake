file(REMOVE_RECURSE
  "CMakeFiles/test_simexec.dir/test_simexec.cpp.o"
  "CMakeFiles/test_simexec.dir/test_simexec.cpp.o.d"
  "test_simexec"
  "test_simexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
