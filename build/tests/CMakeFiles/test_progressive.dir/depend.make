# Empty dependencies file for test_progressive.
# This may be replaced when dependencies are built.
