file(REMOVE_RECURSE
  "CMakeFiles/test_progressive.dir/test_progressive.cpp.o"
  "CMakeFiles/test_progressive.dir/test_progressive.cpp.o.d"
  "test_progressive"
  "test_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
