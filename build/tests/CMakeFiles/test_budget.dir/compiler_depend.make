# Empty compiler generated dependencies file for test_budget.
# This may be replaced when dependencies are built.
