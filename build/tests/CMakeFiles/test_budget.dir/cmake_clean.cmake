file(REMOVE_RECURSE
  "CMakeFiles/test_budget.dir/test_budget.cpp.o"
  "CMakeFiles/test_budget.dir/test_budget.cpp.o.d"
  "test_budget"
  "test_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
