# Empty dependencies file for test_matrix_io.
# This may be replaced when dependencies are built.
