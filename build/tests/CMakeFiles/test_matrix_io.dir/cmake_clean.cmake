file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_io.dir/test_matrix_io.cpp.o"
  "CMakeFiles/test_matrix_io.dir/test_matrix_io.cpp.o.d"
  "test_matrix_io"
  "test_matrix_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
