file(REMOVE_RECURSE
  "CMakeFiles/test_aligner.dir/test_aligner.cpp.o"
  "CMakeFiles/test_aligner.dir/test_aligner.cpp.o.d"
  "test_aligner"
  "test_aligner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aligner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
