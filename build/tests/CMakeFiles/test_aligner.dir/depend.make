# Empty dependencies file for test_aligner.
# This may be replaced when dependencies are built.
