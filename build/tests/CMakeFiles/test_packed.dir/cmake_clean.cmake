file(REMOVE_RECURSE
  "CMakeFiles/test_packed.dir/test_packed.cpp.o"
  "CMakeFiles/test_packed.dir/test_packed.cpp.o.d"
  "test_packed"
  "test_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
