# Empty dependencies file for test_packed.
# This may be replaced when dependencies are built.
