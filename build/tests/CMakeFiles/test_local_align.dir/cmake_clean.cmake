file(REMOVE_RECURSE
  "CMakeFiles/test_local_align.dir/test_local_align.cpp.o"
  "CMakeFiles/test_local_align.dir/test_local_align.cpp.o.d"
  "test_local_align"
  "test_local_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
