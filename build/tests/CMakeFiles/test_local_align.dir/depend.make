# Empty dependencies file for test_local_align.
# This may be replaced when dependencies are built.
