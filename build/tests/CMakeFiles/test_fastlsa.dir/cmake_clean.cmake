file(REMOVE_RECURSE
  "CMakeFiles/test_fastlsa.dir/test_fastlsa.cpp.o"
  "CMakeFiles/test_fastlsa.dir/test_fastlsa.cpp.o.d"
  "test_fastlsa"
  "test_fastlsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastlsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
