file(REMOVE_RECURSE
  "CMakeFiles/test_semiglobal.dir/test_semiglobal.cpp.o"
  "CMakeFiles/test_semiglobal.dir/test_semiglobal.cpp.o.d"
  "test_semiglobal"
  "test_semiglobal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semiglobal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
