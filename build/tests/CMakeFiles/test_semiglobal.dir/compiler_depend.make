# Empty compiler generated dependencies file for test_semiglobal.
# This may be replaced when dependencies are built.
