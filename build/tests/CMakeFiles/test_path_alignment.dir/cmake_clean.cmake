file(REMOVE_RECURSE
  "CMakeFiles/test_path_alignment.dir/test_path_alignment.cpp.o"
  "CMakeFiles/test_path_alignment.dir/test_path_alignment.cpp.o.d"
  "test_path_alignment"
  "test_path_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
