# Empty compiler generated dependencies file for test_path_alignment.
# This may be replaced when dependencies are built.
