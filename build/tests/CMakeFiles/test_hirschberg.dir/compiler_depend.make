# Empty compiler generated dependencies file for test_hirschberg.
# This may be replaced when dependencies are built.
