file(REMOVE_RECURSE
  "CMakeFiles/test_hirschberg.dir/test_hirschberg.cpp.o"
  "CMakeFiles/test_hirschberg.dir/test_hirschberg.cpp.o.d"
  "test_hirschberg"
  "test_hirschberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hirschberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
