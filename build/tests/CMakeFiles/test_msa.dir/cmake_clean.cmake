file(REMOVE_RECURSE
  "CMakeFiles/test_msa.dir/test_msa.cpp.o"
  "CMakeFiles/test_msa.dir/test_msa.cpp.o.d"
  "test_msa"
  "test_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
