# Empty compiler generated dependencies file for test_msa.
# This may be replaced when dependencies are built.
