# Empty dependencies file for test_fastlsa_affine.
# This may be replaced when dependencies are built.
