file(REMOVE_RECURSE
  "CMakeFiles/test_fastlsa_affine.dir/test_fastlsa_affine.cpp.o"
  "CMakeFiles/test_fastlsa_affine.dir/test_fastlsa_affine.cpp.o.d"
  "test_fastlsa_affine"
  "test_fastlsa_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastlsa_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
