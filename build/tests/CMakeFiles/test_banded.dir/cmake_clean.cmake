file(REMOVE_RECURSE
  "CMakeFiles/test_banded.dir/test_banded.cpp.o"
  "CMakeFiles/test_banded.dir/test_banded.cpp.o.d"
  "test_banded"
  "test_banded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
