# Empty dependencies file for test_banded.
# This may be replaced when dependencies are built.
