file(REMOVE_RECURSE
  "CMakeFiles/test_sequence.dir/test_sequence.cpp.o"
  "CMakeFiles/test_sequence.dir/test_sequence.cpp.o.d"
  "test_sequence"
  "test_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
