# Empty compiler generated dependencies file for test_scoring.
# This may be replaced when dependencies are built.
