file(REMOVE_RECURSE
  "CMakeFiles/test_scoring.dir/test_scoring.cpp.o"
  "CMakeFiles/test_scoring.dir/test_scoring.cpp.o.d"
  "test_scoring"
  "test_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
