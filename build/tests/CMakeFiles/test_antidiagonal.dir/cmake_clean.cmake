file(REMOVE_RECURSE
  "CMakeFiles/test_antidiagonal.dir/test_antidiagonal.cpp.o"
  "CMakeFiles/test_antidiagonal.dir/test_antidiagonal.cpp.o.d"
  "test_antidiagonal"
  "test_antidiagonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_antidiagonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
