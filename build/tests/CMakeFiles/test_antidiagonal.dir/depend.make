# Empty dependencies file for test_antidiagonal.
# This may be replaced when dependencies are built.
