# Empty dependencies file for test_local.
# This may be replaced when dependencies are built.
