
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_local.cpp" "tests/CMakeFiles/test_local.dir/test_local.cpp.o" "gcc" "tests/CMakeFiles/test_local.dir/test_local.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/flsa_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/simexec/CMakeFiles/flsa_simexec.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/flsa_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/flsa_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hirschberg/CMakeFiles/flsa_hirschberg.dir/DependInfo.cmake"
  "/root/repo/build/src/simexec/CMakeFiles/flsa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/flsa_search.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/flsa_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/flsa_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/flsa_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
