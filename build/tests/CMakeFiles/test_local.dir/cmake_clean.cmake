file(REMOVE_RECURSE
  "CMakeFiles/test_local.dir/test_local.cpp.o"
  "CMakeFiles/test_local.dir/test_local.cpp.o.d"
  "test_local"
  "test_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
