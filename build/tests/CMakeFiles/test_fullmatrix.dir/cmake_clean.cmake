file(REMOVE_RECURSE
  "CMakeFiles/test_fullmatrix.dir/test_fullmatrix.cpp.o"
  "CMakeFiles/test_fullmatrix.dir/test_fullmatrix.cpp.o.d"
  "test_fullmatrix"
  "test_fullmatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullmatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
