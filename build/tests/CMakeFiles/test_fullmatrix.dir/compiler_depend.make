# Empty compiler generated dependencies file for test_fullmatrix.
# This may be replaced when dependencies are built.
