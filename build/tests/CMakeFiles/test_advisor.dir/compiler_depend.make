# Empty compiler generated dependencies file for test_advisor.
# This may be replaced when dependencies are built.
