file(REMOVE_RECURSE
  "CMakeFiles/test_cooptimal.dir/test_cooptimal.cpp.o"
  "CMakeFiles/test_cooptimal.dir/test_cooptimal.cpp.o.d"
  "test_cooptimal"
  "test_cooptimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooptimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
