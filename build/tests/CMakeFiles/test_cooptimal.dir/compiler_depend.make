# Empty compiler generated dependencies file for test_cooptimal.
# This may be replaced when dependencies are built.
