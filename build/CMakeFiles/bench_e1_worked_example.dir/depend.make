# Empty dependencies file for bench_e1_worked_example.
# This may be replaced when dependencies are built.
