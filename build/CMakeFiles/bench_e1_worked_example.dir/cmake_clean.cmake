file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_worked_example.dir/bench/bench_e1_worked_example.cpp.o"
  "CMakeFiles/bench_e1_worked_example.dir/bench/bench_e1_worked_example.cpp.o.d"
  "bench/bench_e1_worked_example"
  "bench/bench_e1_worked_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_worked_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
