file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_cache.dir/bench/bench_e10_cache.cpp.o"
  "CMakeFiles/bench_e10_cache.dir/bench/bench_e10_cache.cpp.o.d"
  "bench/bench_e10_cache"
  "bench/bench_e10_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
