# Empty dependencies file for bench_e10_cache.
# This may be replaced when dependencies are built.
