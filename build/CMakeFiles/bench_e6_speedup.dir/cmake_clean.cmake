file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_speedup.dir/bench/bench_e6_speedup.cpp.o"
  "CMakeFiles/bench_e6_speedup.dir/bench/bench_e6_speedup.cpp.o.d"
  "bench/bench_e6_speedup"
  "bench/bench_e6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
