file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_parallel_k.dir/bench/bench_e8_parallel_k.cpp.o"
  "CMakeFiles/bench_e8_parallel_k.dir/bench/bench_e8_parallel_k.cpp.o.d"
  "bench/bench_e8_parallel_k"
  "bench/bench_e8_parallel_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_parallel_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
