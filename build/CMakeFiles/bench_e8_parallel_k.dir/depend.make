# Empty dependencies file for bench_e8_parallel_k.
# This may be replaced when dependencies are built.
