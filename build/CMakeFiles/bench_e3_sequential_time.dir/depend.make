# Empty dependencies file for bench_e3_sequential_time.
# This may be replaced when dependencies are built.
