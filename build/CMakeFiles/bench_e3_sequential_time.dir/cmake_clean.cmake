file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_sequential_time.dir/bench/bench_e3_sequential_time.cpp.o"
  "CMakeFiles/bench_e3_sequential_time.dir/bench/bench_e3_sequential_time.cpp.o.d"
  "bench/bench_e3_sequential_time"
  "bench/bench_e3_sequential_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_sequential_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
