# Empty dependencies file for bench_e7_efficiency.
# This may be replaced when dependencies are built.
