file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_efficiency.dir/bench/bench_e7_efficiency.cpp.o"
  "CMakeFiles/bench_e7_efficiency.dir/bench/bench_e7_efficiency.cpp.o.d"
  "bench/bench_e7_efficiency"
  "bench/bench_e7_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
