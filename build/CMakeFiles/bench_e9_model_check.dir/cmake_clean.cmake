file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_model_check.dir/bench/bench_e9_model_check.cpp.o"
  "CMakeFiles/bench_e9_model_check.dir/bench/bench_e9_model_check.cpp.o.d"
  "bench/bench_e9_model_check"
  "bench/bench_e9_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
