# Empty dependencies file for bench_e9_model_check.
# This may be replaced when dependencies are built.
