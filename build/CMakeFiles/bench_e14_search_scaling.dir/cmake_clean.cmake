file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_search_scaling.dir/bench/bench_e14_search_scaling.cpp.o"
  "CMakeFiles/bench_e14_search_scaling.dir/bench/bench_e14_search_scaling.cpp.o.d"
  "bench/bench_e14_search_scaling"
  "bench/bench_e14_search_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_search_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
