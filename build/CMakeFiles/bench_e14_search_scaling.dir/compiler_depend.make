# Empty compiler generated dependencies file for bench_e14_search_scaling.
# This may be replaced when dependencies are built.
