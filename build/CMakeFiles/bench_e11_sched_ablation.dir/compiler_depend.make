# Empty compiler generated dependencies file for bench_e11_sched_ablation.
# This may be replaced when dependencies are built.
