file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_affine_extension.dir/bench/bench_e13_affine_extension.cpp.o"
  "CMakeFiles/bench_e13_affine_extension.dir/bench/bench_e13_affine_extension.cpp.o.d"
  "bench/bench_e13_affine_extension"
  "bench/bench_e13_affine_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_affine_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
