# Empty dependencies file for bench_e13_affine_extension.
# This may be replaced when dependencies are built.
