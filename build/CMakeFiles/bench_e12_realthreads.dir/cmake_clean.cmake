file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_realthreads.dir/bench/bench_e12_realthreads.cpp.o"
  "CMakeFiles/bench_e12_realthreads.dir/bench/bench_e12_realthreads.cpp.o.d"
  "bench/bench_e12_realthreads"
  "bench/bench_e12_realthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_realthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
