file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_space.dir/bench/bench_e5_space.cpp.o"
  "CMakeFiles/bench_e5_space.dir/bench/bench_e5_space.cpp.o.d"
  "bench/bench_e5_space"
  "bench/bench_e5_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
