file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_workloads.dir/bench/bench_e2_workloads.cpp.o"
  "CMakeFiles/bench_e2_workloads.dir/bench/bench_e2_workloads.cpp.o.d"
  "bench/bench_e2_workloads"
  "bench/bench_e2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
