# Empty dependencies file for bench_e2_workloads.
# This may be replaced when dependencies are built.
