file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_k_sweep.dir/bench/bench_e4_k_sweep.cpp.o"
  "CMakeFiles/bench_e4_k_sweep.dir/bench/bench_e4_k_sweep.cpp.o.d"
  "bench/bench_e4_k_sweep"
  "bench/bench_e4_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
