# Empty compiler generated dependencies file for bench_e4_k_sweep.
# This may be replaced when dependencies are built.
