# Empty dependencies file for batch_search.
# This may be replaced when dependencies are built.
