file(REMOVE_RECURSE
  "CMakeFiles/batch_search.dir/batch_search.cpp.o"
  "CMakeFiles/batch_search.dir/batch_search.cpp.o.d"
  "batch_search"
  "batch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
