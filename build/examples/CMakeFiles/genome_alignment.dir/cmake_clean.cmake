file(REMOVE_RECURSE
  "CMakeFiles/genome_alignment.dir/genome_alignment.cpp.o"
  "CMakeFiles/genome_alignment.dir/genome_alignment.cpp.o.d"
  "genome_alignment"
  "genome_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
