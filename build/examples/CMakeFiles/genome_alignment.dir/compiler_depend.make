# Empty compiler generated dependencies file for genome_alignment.
# This may be replaced when dependencies are built.
