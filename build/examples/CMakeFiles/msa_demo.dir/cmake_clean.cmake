file(REMOVE_RECURSE
  "CMakeFiles/msa_demo.dir/msa_demo.cpp.o"
  "CMakeFiles/msa_demo.dir/msa_demo.cpp.o.d"
  "msa_demo"
  "msa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
