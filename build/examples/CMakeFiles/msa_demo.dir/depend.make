# Empty dependencies file for msa_demo.
# This may be replaced when dependencies are built.
