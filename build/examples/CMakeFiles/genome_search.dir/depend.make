# Empty dependencies file for genome_search.
# This may be replaced when dependencies are built.
