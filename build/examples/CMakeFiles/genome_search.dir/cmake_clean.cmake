file(REMOVE_RECURSE
  "CMakeFiles/genome_search.dir/genome_search.cpp.o"
  "CMakeFiles/genome_search.dir/genome_search.cpp.o.d"
  "genome_search"
  "genome_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
