file(REMOVE_RECURSE
  "CMakeFiles/local_search.dir/local_search.cpp.o"
  "CMakeFiles/local_search.dir/local_search.cpp.o.d"
  "local_search"
  "local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
