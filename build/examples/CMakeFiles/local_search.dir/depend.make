# Empty dependencies file for local_search.
# This may be replaced when dependencies are built.
