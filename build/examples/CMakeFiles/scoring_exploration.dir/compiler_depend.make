# Empty compiler generated dependencies file for scoring_exploration.
# This may be replaced when dependencies are built.
