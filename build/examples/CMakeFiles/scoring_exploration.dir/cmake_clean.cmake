file(REMOVE_RECURSE
  "CMakeFiles/scoring_exploration.dir/scoring_exploration.cpp.o"
  "CMakeFiles/scoring_exploration.dir/scoring_exploration.cpp.o.d"
  "scoring_exploration"
  "scoring_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoring_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
