// flsa_align — command-line pairwise aligner.
//
// Reads two sequences from FASTA (one file with two records, or two files
// with one record each) and aligns them with the requested mode and
// algorithm.
//
//   flsa_align pair.fasta
//   flsa_align --mode local --matrix blosum62 --gap -6 query.fa target.fa
//   flsa_align --algorithm fastlsa --k 8 --memory-mb 64 --stats big.fa
//   flsa_align --algorithm parallel --threads 8 --metrics
//       --trace-out trace.json big.fa
#include <fstream>
#include <iostream>
#include <string>

#include "core/advisor.hpp"
#include "dp/kernel.hpp"
#include "core/local_align.hpp"
#include "core/semiglobal.hpp"
#include "flsa/flsa.hpp"
#include "scoring/matrix_io.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

namespace {

struct LoadedInputs {
  flsa::Sequence a;
  flsa::Sequence b;
};

const flsa::Alphabet& alphabet_for(const std::string& matrix_name) {
  if (matrix_name == "dna") return flsa::Alphabet::dna();
  if (matrix_name == "dna-n") return flsa::Alphabet::dna_n();
  return flsa::Alphabet::protein();
}

LoadedInputs load_inputs(const std::vector<std::string>& paths,
                         const flsa::Alphabet& alphabet) {
  std::vector<flsa::Sequence> records;
  for (const std::string& path : paths) {
    for (flsa::Sequence& seq : flsa::read_fasta_file(path, alphabet)) {
      records.push_back(std::move(seq));
    }
  }
  if (records.size() < 2) {
    throw std::invalid_argument(
        "need two FASTA records (got " + std::to_string(records.size()) +
        ")");
  }
  return LoadedInputs{std::move(records[0]), std::move(records[1])};
}

}  // namespace

int main(int argc, char** argv) {
  flsa::CliParser cli(
      "flsa_align: optimal pairwise sequence alignment (FastLSA library)");
  cli.add_string("mode", "global",
                 "alignment mode: global | local | fitting | overlap");
  cli.add_string("matrix", "mdm78",
                 "mdm78 | pam250 | blosum62 | dna | dna-n | path to an "
                 "NCBI-format matrix file");
  cli.add_int("gap", flsa::kDefaultGapExtend,
              "linear gap penalty per residue (<= 0)");
  cli.add_int("gap-open", flsa::kDefaultGapOpen,
              "affine gap-open penalty (<= 0; 0 selects linear gaps; "
              "global mode only)");
  cli.add_string("algorithm", "auto",
                 "auto | full-matrix | hirschberg | fastlsa | parallel");
  cli.add_int("k", 8, "FastLSA division factor");
  cli.add_int("bm", 1 << 20, "FastLSA base-case buffer, in DPM cells");
  cli.add_int("threads", 1, "threads for --algorithm parallel");
  cli.add_string("scheduler", "dependency",
                 "wavefront scheduler for --algorithm parallel: "
                 "barrier | dependency | stealing");
  // The accepted --kernel names come from the dispatch table itself, so
  // the help text can never drift from what parse_kernel_kind accepts.
  std::string kernel_help = "DP sweep kernel: ";
  for (const flsa::KernelInfo& info : flsa::kernel_registry()) {
    if (info.kind != flsa::kernel_registry().front().kind) {
      kernel_help += " | ";
    }
    kernel_help += info.name;
  }
  kernel_help +=
      " (see --list-kernels; every kernel produces identical results)";
  cli.add_string("kernel", "auto", kernel_help);
  cli.add_flag("list-kernels", false,
               "list the available DP kernels and exit");
  cli.add_int("memory-mb", 0,
              "memory budget in MiB for --algorithm auto (0 = unbounded)");
  cli.add_flag("prune", false,
               "score-bound tile pruning of the FastLSA fill phase "
               "(identical score and alignment, fewer cells swept)");
  cli.add_flag("stats", false, "print operation/memory statistics");
  cli.add_flag("metrics", false,
               "record and print per-phase metrics (timings, cells/s)");
  cli.add_string("trace-out", "",
                 "write a Chrome-trace JSON (chrome://tracing / Perfetto) "
                 "of per-worker tile execution to this file");
  cli.add_flag("advise", false,
               "print the advisor's recommended configuration and exit");
  cli.add_int("width", 60, "pretty-print width");
  cli.add_string("format", "pretty", "output format: pretty | blast | tsv");

  try {
    if (!cli.parse(argc, argv)) return 0;
    if (cli.get_flag("list-kernels")) {
      for (const flsa::KernelInfo& info : flsa::kernel_registry()) {
        std::cout << info.name << " : " << info.summary << "\n";
      }
      return 0;
    }
    if (cli.positional().empty()) {
      std::cerr << "error: no FASTA input given (see --help)\n";
      return 2;
    }

    // Scoring.
    const std::string matrix_name = cli.get_string("matrix");
    flsa::scoring::LoadedMatrix loaded;
    const flsa::SubstitutionMatrix* matrix = nullptr;
    static const flsa::SubstitutionMatrix dna_matrix = flsa::scoring::dna();
    static const flsa::SubstitutionMatrix dna_n_matrix =
        flsa::scoring::dna_n();
    if (matrix_name == "mdm78") {
      matrix = &flsa::scoring::mdm78();
    } else if (matrix_name == "pam250") {
      matrix = &flsa::scoring::pam250();
    } else if (matrix_name == "blosum62") {
      matrix = &flsa::scoring::blosum62();
    } else if (matrix_name == "dna") {
      matrix = &dna_matrix;
    } else if (matrix_name == "dna-n") {
      matrix = &dna_n_matrix;
    } else {
      loaded = flsa::scoring::read_matrix_file(matrix_name);
      matrix = loaded.matrix.get();
    }
    const flsa::Alphabet& alphabet =
        loaded.alphabet ? *loaded.alphabet : alphabet_for(matrix_name);

    const auto gap = static_cast<flsa::Score>(cli.get_int("gap"));
    const auto gap_open = static_cast<flsa::Score>(cli.get_int("gap-open"));
    const flsa::ScoringScheme scheme =
        gap_open == 0 ? flsa::ScoringScheme(*matrix, gap)
                      : flsa::ScoringScheme(*matrix, gap_open, gap);

    const LoadedInputs inputs = load_inputs(cli.positional(), alphabet);
    const flsa::Sequence& a = inputs.a;
    const flsa::Sequence& b = inputs.b;

    if (cli.get_flag("advise")) {
      flsa::MachineProfile machine;
      machine.processors =
          std::max(1u, static_cast<unsigned>(cli.get_int("threads")));
      if (cli.get_int("memory-mb") > 0) {
        machine.memory_bytes =
            static_cast<std::size_t>(cli.get_int("memory-mb")) << 20;
      }
      const flsa::Recommendation rec = flsa::recommend(
          a.size(), b.size(), !scheme.is_linear(), machine);
      std::cout << "strategy : " << flsa::to_string(rec.strategy) << "\n"
                << "k        : " << rec.fastlsa.k << "\n"
                << "BM cells : " << rec.fastlsa.base_case_cells << "\n"
                << "rationale: " << rec.rationale << "\n";
      return 0;
    }

    flsa::FastLsaOptions fl;
    fl.k = static_cast<unsigned>(cli.get_int("k"));
    fl.base_case_cells = static_cast<std::size_t>(cli.get_int("bm"));
    flsa::KernelKind kernel = flsa::KernelKind::kAuto;
    if (!flsa::parse_kernel_kind(cli.get_string("kernel"), &kernel)) {
      std::string choices;
      for (const flsa::KernelInfo& info : flsa::kernel_registry()) {
        if (!choices.empty()) choices += " | ";
        choices += info.name;
      }
      throw std::invalid_argument("unknown --kernel " +
                                  cli.get_string("kernel") + " (choices: " +
                                  choices + ")");
    }
    fl.kernel = kernel;
    fl.prune = cli.get_flag("prune");

    // Observability: arm the metrics registry and/or a trace recorder
    // before the alignment runs. Both are process-global switches; this
    // tool runs one alignment, so scoping is trivial.
    const bool metrics_on = cli.get_flag("metrics");
    const std::string trace_path = cli.get_string("trace-out");
    flsa::obs::TraceRecorder trace;
    if (metrics_on) flsa::obs::set_enabled(true);
    if (!trace_path.empty()) flsa::obs::set_active_trace(&trace);

    const std::string mode = cli.get_string("mode");
    flsa::Timer timer;
    flsa::Alignment aln;
    flsa::FastLsaStats stats;
    flsa::AlignReport report;
    std::string algorithm_used;

    if (mode == "local") {
      if (scheme.is_linear()) {
        aln = flsa::local_align(a, b, scheme, fl, &stats);
        algorithm_used = "linear-space local (FastLSA)";
      } else {
        aln = flsa::local_align_full_matrix_affine(a, b, scheme,
                                                   &stats.counters);
        algorithm_used = "affine local (full matrix)";
      }
    } else if (mode == "fitting") {
      aln = flsa::fitting_align(a, b, scheme, fl, &stats);
      algorithm_used = "linear-space fitting (FastLSA)";
    } else if (mode == "overlap") {
      aln = flsa::overlap_align(a, b, scheme, fl, &stats);
      algorithm_used = "linear-space overlap (FastLSA)";
    } else if (mode == "global") {
      const std::string algorithm = cli.get_string("algorithm");
      if (algorithm == "parallel") {
        flsa::ParallelOptions parallel;
        parallel.threads =
            std::max(1u, static_cast<unsigned>(cli.get_int("threads")));
        const std::string scheduler = cli.get_string("scheduler");
        if (!flsa::parse_scheduler_kind(scheduler, &parallel.scheduler)) {
          throw std::invalid_argument("unknown --scheduler " + scheduler);
        }
        aln = scheme.is_linear()
                  ? flsa::parallel_fastlsa_align(a, b, scheme, fl, parallel,
                                                 &stats)
                  : flsa::parallel_fastlsa_align_affine(a, b, scheme, fl,
                                                        parallel, &stats);
        algorithm_used =
            std::string("parallel fastlsa (") +
            flsa::to_string(parallel.scheduler) + ")";
      } else {
        flsa::AlignOptions options;
        options.fastlsa = fl;
        options.hirschberg.kernel = kernel;
        if (algorithm == "full-matrix") {
          options.strategy = flsa::Strategy::kFullMatrix;
        } else if (algorithm == "hirschberg") {
          options.strategy = flsa::Strategy::kHirschberg;
        } else if (algorithm == "fastlsa") {
          options.strategy = flsa::Strategy::kFastLsa;
        } else if (algorithm == "auto") {
          options.strategy = flsa::Strategy::kAuto;
          if (cli.get_int("memory-mb") > 0) {
            options.memory_limit_bytes =
                static_cast<std::size_t>(cli.get_int("memory-mb")) << 20;
          }
        } else {
          throw std::invalid_argument("unknown --algorithm " + algorithm);
        }
        aln = flsa::align(a, b, scheme, options, &report);
        stats = report.stats;
        algorithm_used = flsa::to_string(report.chosen);
      }
    } else {
      throw std::invalid_argument("unknown --mode " + mode);
    }
    const double seconds = timer.seconds();

    const std::string format = cli.get_string("format");
    const auto width = static_cast<std::size_t>(cli.get_int("width"));
    if (format == "tsv") {
      std::cout << flsa::tsv_header() << "\n"
                << flsa::format_tsv(aln, a.id(), b.id()) << "\n";
    } else if (format == "blast") {
      std::cout << flsa::format_blast(aln, a.id(), b.id(), width) << "\n";
    } else if (format == "pretty") {
      std::cout << "# " << a.id() << " (" << a.size() << ") x " << b.id()
                << " (" << b.size() << "), mode=" << mode << ", "
                << algorithm_used << "\n"
                << "score    : " << aln.score << "\n"
                << "identity : " << 100.0 * aln.identity() << "%\n"
                << "region   : a[" << aln.a_begin << "," << aln.a_end
                << ") x b[" << aln.b_begin << "," << aln.b_end << ")\n"
                << "cigar    : " << aln.cigar() << "\n\n"
                << aln.pretty(width) << "\n";
    } else {
      throw std::invalid_argument("unknown --format " + format);
    }
    if (cli.get_flag("stats")) {
      std::cout << "time            : " << seconds * 1e3 << " ms\n"
                << "kernel          : " << flsa::to_string(stats.kernel_used)
                << " (requested " << flsa::to_string(kernel) << ", simd ISA "
                << flsa::simd_kernel_isa() << ")\n"
                << "cells scored    : " << stats.counters.cells_scored
                << "\ncells stored    : " << stats.counters.cells_stored
                << "\ntraceback steps : " << stats.counters.traceback_steps
                << "\nkernel escalations : "
                << stats.counters.kernel_escalations
                << "\ntiles pruned    : " << stats.counters.tiles_pruned
                << "\npeak DPM bytes  : " << stats.peak_bytes << "\n";
    }
    if (!trace_path.empty()) {
      flsa::obs::set_active_trace(nullptr);
      std::ofstream out(trace_path);
      if (!out) {
        throw std::invalid_argument("cannot open --trace-out file " +
                                    trace_path);
      }
      trace.write_chrome_trace(out);
      if (!out.flush()) {
        throw std::runtime_error("failed writing --trace-out file " +
                                 trace_path);
      }
      std::cout << "trace    : " << trace.size() << " spans -> "
                << trace_path << "\n";
    }
    if (metrics_on) {
      std::cout << "\n";
      flsa::obs::metrics().report(std::cout);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
