// flsa_generate — synthetic workload generator.
//
// Emits a FASTA file with a homologous pair produced by the documented
// mutation process (DESIGN.md substitution for the paper's real pairs), so
// any experiment can be reproduced from a (length, divergence, seed)
// triple.
//
//   flsa_generate --length 10000 --alphabet dna --divergence 0.1 --seed 7
#include <fstream>
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("flsa_generate: deterministic homologous-pair FASTA");
  cli.add_int("length", 10000, "parent sequence length");
  cli.add_string("alphabet", "protein", "protein | dna");
  cli.add_double("divergence", 0.15, "substitution rate of the child");
  cli.add_double("indel-rate", 0.025,
                 "insertion and deletion start rate of the child");
  cli.add_int("seed", 1, "PRNG seed");
  cli.add_string("out", "-", "output path ('-' = stdout)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string alphabet_name = cli.get_string("alphabet");
    const flsa::Alphabet& alphabet = alphabet_name == "dna"
                                         ? flsa::Alphabet::dna()
                                         : flsa::Alphabet::protein();
    flsa::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    flsa::MutationModel model;
    model.substitution_rate = cli.get_double("divergence");
    model.insertion_rate = cli.get_double("indel-rate");
    model.deletion_rate = cli.get_double("indel-rate");
    const flsa::SequencePair pair = flsa::homologous_pair(
        alphabet, static_cast<std::size_t>(cli.get_int("length")), model,
        rng);

    std::vector<flsa::Sequence> records;
    records.emplace_back(alphabet, pair.a.to_string(), "parent",
                         "len=" + std::to_string(pair.a.size()));
    records.emplace_back(alphabet, pair.b.to_string(), "child",
                         "divergence=" +
                             std::to_string(cli.get_double("divergence")) +
                             " seed=" + std::to_string(cli.get_int("seed")));

    const std::string out = cli.get_string("out");
    if (out == "-") {
      flsa::write_fasta(std::cout, records);
    } else {
      flsa::write_fasta_file(out, records);
      std::cerr << "wrote " << out << " (" << pair.a.size() << " + "
                << pair.b.size() << " residues)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
