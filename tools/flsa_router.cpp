// flsa_router — the sharded front tier for a fleet of flsa_serve
// backends.
//
// Speaks the same wire protocol as flsa_serve to clients, and routes:
// REF_PUT/SEARCH by rendezvous hashing on the reference id (replication
// factor --replication), ALIGN least-loaded; slow singles are hedged to a
// second replica and small queued ALIGNs are coalesced into ALIGN_BATCH
// frames. SIGINT/SIGTERM drain gracefully: stop accepting, finish
// in-flight requests, answer stragglers SHUTTING_DOWN, exit 0.
//
//   flsa_router --port 7420 --backends 127.0.0.1:7421,127.0.0.1:7422
//   flsa_router --port 0 --port-file /tmp/port --backend-file backends.txt
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "support/cli.hpp"

namespace {

// Self-pipe: the handler only writes one byte; the main thread blocks on
// the read end and runs the drain with ordinary code.
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t rc = write(g_signal_pipe[1], &byte, 1);
}

flsa::service::Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw std::runtime_error("bad backend address '" + spec +
                             "' (expected host:port)");
  }
  const int port = std::stoi(spec.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("bad backend port in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// --backends host:p1,host:p2 plus --backend-file (one host:port per
/// line, '#' comments), concatenated.
std::vector<flsa::service::Endpoint> parse_backends(
    const std::string& list, const std::string& file) {
  std::vector<flsa::service::Endpoint> backends;
  std::string token;
  std::istringstream csv(list);
  while (std::getline(csv, token, ',')) {
    if (!token.empty()) backends.push_back(parse_endpoint(token));
  }
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      throw std::runtime_error("cannot read --backend-file " + file);
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      const std::size_t end = line.find_last_not_of(" \t\r");
      backends.push_back(parse_endpoint(line.substr(start, end - start + 1)));
    }
  }
  return backends;
}

}  // namespace

int main(int argc, char** argv) {
  flsa::CliParser cli(
      "flsa_router: sharded front tier for flsa_serve fleets. Speaks the "
      "wire protocol of docs/service.md to clients; routes REF_PUT/SEARCH "
      "by rendezvous hashing, ALIGN least-loaded, with hedging and batch "
      "coalescing. SIGINT/SIGTERM drain gracefully.");
  cli.add_string("host", "127.0.0.1", "listen address");
  cli.add_int("port", 7420, "TCP port (0 = ephemeral, see --port-file)");
  cli.add_string("port-file", "",
                 "write the bound port number to this file once listening "
                 "(lets scripts use --port 0)");
  cli.add_string("backends", "",
                 "comma-separated backend list, e.g. "
                 "127.0.0.1:7421,127.0.0.1:7422");
  cli.add_string("backend-file", "",
                 "file with one backend host:port per line ('#' comments); "
                 "concatenated with --backends");
  cli.add_int("replication", 1,
              "REF_PUT replication factor (each reference lives on "
              "min(R, backends) backends)");
  cli.add_int("channels", 2, "pipelined connections per backend");
  cli.add_int("queue", 256, "per-backend outbound queue capacity");
  cli.add_int("coalesce-jobs", 8,
              "most ALIGNs folded into one ALIGN_BATCH frame (1 disables "
              "coalescing)");
  cli.add_int("coalesce-cells-k", 1024,
              "only ALIGNs at most this many thousand DPM cells are "
              "coalesced");
  cli.add_flag("no-hedge", false, "disable hedged requests");
  cli.add_int("hedge-min-ms", 20, "floor of the hedge threshold, ms");
  cli.add_int("hedge-budget", 10,
              "hedges issued may not exceed this percentage of forwarded "
              "requests");
  cli.add_int("max-attempts", 3, "total sends per request (try + failovers)");
  cli.add_int("health-interval-ms", 200, "STATS health-check period");
  cli.add_int("upload-route-ttl-ms", 600000,
              "TTL for an upload placement with no SEQ_* traffic; an "
              "abandoned session's route is evicted after this long "
              "(0 = never)");
  cli.add_int("idle-timeout-ms", 60000,
              "per-recv read deadline on client connections (0 = none)");
  cli.add_int("max-connections", 256,
              "concurrent client connection cap (0 = unlimited)");
  cli.add_int("drain-grace-ms", 5000,
              "bound on waiting for in-flight requests at shutdown");
  cli.add_flag("quiet", false, "suppress the startup/drain log lines");

  try {
    if (!cli.parse(argc, argv)) return 0;

    flsa::router::RouterConfig config;
    config.host = cli.get_string("host");
    config.port = static_cast<std::uint16_t>(cli.get_int("port"));
    config.backends = parse_backends(cli.get_string("backends"),
                                     cli.get_string("backend-file"));
    if (config.backends.empty()) {
      std::cerr << "error: no backends (use --backends and/or "
                   "--backend-file)\n";
      return 1;
    }
    config.replication = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("replication")));
    config.channels_per_backend = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("channels")));
    config.queue_capacity = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("queue")));
    config.coalesce_max_jobs = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("coalesce-jobs")));
    config.coalesce_max_cells =
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, cli.get_int("coalesce-cells-k"))) *
        1000u;
    config.hedge_enabled = !cli.get_flag("no-hedge");
    config.hedge_min_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("hedge-min-ms")));
    config.hedge_budget_percent = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("hedge-budget")));
    config.max_attempts = static_cast<unsigned>(
        std::max<std::int64_t>(1, cli.get_int("max-attempts")));
    config.health_interval_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, cli.get_int("health-interval-ms")));
    config.upload_route_ttl_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("upload-route-ttl-ms")));
    config.idle_timeout_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("idle-timeout-ms")));
    config.max_connections = static_cast<std::size_t>(
        std::max<std::int64_t>(0, cli.get_int("max-connections")));
    config.drain_grace_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("drain-grace-ms")));

    if (pipe(g_signal_pipe) != 0) {
      std::cerr << "error: pipe failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    struct sigaction action {};
    action.sa_handler = handle_shutdown_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    flsa::router::Router router(config);
    router.start();

    const std::string port_file = cli.get_string("port-file");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << router.port() << "\n";
      if (!out.flush()) {
        std::cerr << "error: cannot write --port-file " << port_file << "\n";
        return 1;
      }
    }
    const bool quiet = cli.get_flag("quiet");
    if (!quiet) {
      std::cout << "flsa_router listening on " << config.host << ":"
                << router.port() << " (backends=" << config.backends.size()
                << ", replication=" << config.replication
                << ", channels/backend=" << config.channels_per_backend
                << ", coalesce<=" << config.coalesce_max_jobs
                << " jobs, hedging "
                << (config.hedge_enabled ? "on" : "off") << ")\n"
                << std::flush;
    }

    char byte = 0;
    while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    if (!quiet) std::cout << "draining: finishing in-flight requests\n";
    router.stop();
    if (!quiet) {
      flsa::obs::metrics().report(std::cout);
      std::cout << "drained cleanly\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
