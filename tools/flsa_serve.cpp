// flsa_serve — the long-running alignment daemon.
//
// Binds a TCP port (loopback by default), answers the wire protocol of
// docs/service.md with a bounded request queue, admission control, and a
// worker pool of persistent Aligners, and drains gracefully on
// SIGINT/SIGTERM: stop accepting, finish every admitted request, flush
// metrics, exit 0.
//
//   flsa_serve --port 7421 --workers 8 --queue 128
//   flsa_serve --port 0 --port-file /tmp/port   # ephemeral; CI reads the file
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>

#include "parallel/thread_pool.hpp"
#include "service/server.hpp"
#include "support/cli.hpp"

namespace {

// Self-pipe: the only async-signal-safe thing the handler does is write
// one byte; the main thread blocks on the read end and runs the actual
// drain with ordinary (unsafe-in-handlers) code.
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
  const char byte = 1;
  // Best effort: if the pipe is full a byte is already pending.
  [[maybe_unused]] const ssize_t rc = write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  flsa::CliParser cli(
      "flsa_serve: alignment service daemon (FastLSA library). Speaks the "
      "length-prefixed binary protocol of docs/service.md; SIGINT/SIGTERM "
      "drain gracefully.");
  cli.add_string("host", "127.0.0.1", "listen address");
  cli.add_int("port", 7421, "TCP port (0 = ephemeral, see --port-file)");
  cli.add_string("port-file", "",
                 "write the bound port number to this file once listening "
                 "(lets scripts use --port 0)");
  cli.add_int("workers", 0, "worker threads (0 = hardware concurrency)");
  cli.add_int("queue", 64, "bounded request queue capacity");
  cli.add_int("max-cells-m", 256,
              "admission budget per request, in millions of DPM cells "
              "((m+1)*(n+1) above this is rejected TOO_LARGE)");
  cli.add_int("k", 8, "FastLSA division factor (server default)");
  cli.add_int("bm", 1 << 20,
              "FastLSA base-case buffer in cells (server default)");
  cli.add_int("max-ref-m", 64,
              "cap on registered-reference length, in millions of "
              "residues (REF_PUT above this is rejected TOO_LARGE)");
  cli.add_int("seed-k", 0,
              "seed (k-mer) length for REF_PUT requests that leave k at 0 "
              "(0 = per-alphabet default: 12 for DNA, 5 for protein)");
  cli.add_string("store-dir", "",
                 "directory for the packed sequence store (mmap'd "
                 "reference files); empty = a private TMPDIR directory "
                 "removed on drain");
  cli.add_int("max-banded-cells-m", 8192,
              "admission budget for banded ALIGN_REF, in millions of "
              "banded-matrix cells ((m+1)*(|n-m|+2w+1) above this is "
              "rejected TOO_LARGE)");
  cli.add_int("max-store-m", 4096,
              "cap on one streamed upload, in millions of residues "
              "(SEQ_BEGIN/SEQ_CHUNK past it answer TOO_LARGE)");
  cli.add_int("idle-timeout-ms", 60000,
              "per-recv read deadline on client connections; bounds idle "
              "and slow-loris peers (0 = none)");
  cli.add_int("upload-idle-ms", 60000,
              "idle ceiling for an open upload session; a session with no "
              "SEQ_* activity for this long is reaped and its partial file "
              "removed (0 = never)");
  cli.add_int("max-connections", 256,
              "concurrent-connection cap; over-cap peers get a typed "
              "CONNECTION_LIMIT answer (0 = unlimited)");
  cli.add_string("fault-plan", "",
                 "fault-injection plan for chaos testing, e.g. "
                 "'seed=42,reject=0.2,drop=0.05,delay=0.1:25,truncate=0.05,"
                 "corrupt=0.05' (see docs/service.md)");
  cli.add_flag("quiet", false, "suppress the startup/drain log lines");

  try {
    if (!cli.parse(argc, argv)) return 0;

    flsa::service::ServiceConfig config;
    config.host = cli.get_string("host");
    config.port = static_cast<std::uint16_t>(cli.get_int("port"));
    config.workers = static_cast<unsigned>(cli.get_int("workers"));
    config.queue_capacity =
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("queue")));
    config.max_request_cells =
        static_cast<std::uint64_t>(cli.get_int("max-cells-m")) * 1000000u;
    config.fastlsa.k = static_cast<unsigned>(cli.get_int("k"));
    config.fastlsa.base_case_cells =
        static_cast<std::size_t>(cli.get_int("bm"));
    config.max_reference_residues =
        static_cast<std::size_t>(
            std::max<std::int64_t>(1, cli.get_int("max-ref-m"))) *
        1000000u;
    config.default_seed_k = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("seed-k")));
    config.store_dir = cli.get_string("store-dir");
    config.max_banded_cells =
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, cli.get_int("max-banded-cells-m"))) *
        1000000u;
    config.max_store_residues =
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, cli.get_int("max-store-m"))) *
        1000000u;
    config.idle_timeout_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("idle-timeout-ms")));
    config.upload_idle_timeout_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cli.get_int("upload-idle-ms")));
    config.max_connections = static_cast<std::size_t>(
        std::max<std::int64_t>(0, cli.get_int("max-connections")));
    config.fault_plan =
        flsa::service::parse_fault_plan(cli.get_string("fault-plan"));

    if (pipe(g_signal_pipe) != 0) {
      std::cerr << "error: pipe failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    struct sigaction action {};
    action.sa_handler = handle_shutdown_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);  // client resets surface as send() errors

    flsa::service::AlignmentServer server(config);
    server.start();

    const std::string port_file = cli.get_string("port-file");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
      if (!out.flush()) {
        std::cerr << "error: cannot write --port-file " << port_file << "\n";
        return 1;
      }
    }
    const bool quiet = cli.get_flag("quiet");
    if (!quiet) {
      const unsigned workers = config.workers != 0
                                   ? config.workers
                                   : flsa::default_thread_count();
      std::cout << "flsa_serve listening on " << config.host << ":"
                << server.port() << " (workers=" << workers
                << ", queue=" << config.queue_capacity
                << ", max cells=" << config.max_request_cells
                << ", fault plan: "
                << flsa::service::to_string(config.fault_plan) << ")\n"
                << std::flush;
      // Restart recovery: say what the registry replay brought back (and
      // what it had to skip) so an operator restarting over a persistent
      // --store-dir sees the surviving handles without asking REF_LIST.
      const auto& recovery = server.recovery();
      if (!config.store_dir.empty()) {
        std::cout << "store recovery: " << recovery.recovered
                  << " handle(s) restored, " << recovery.skipped
                  << " skipped\n";
        for (const std::string& warning : recovery.warnings) {
          std::cout << "store recovery warning: " << warning << "\n";
        }
        std::cout << std::flush;
      }
    }

    // Block until SIGINT/SIGTERM, then drain.
    char byte = 0;
    while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    if (!quiet) std::cout << "draining: finishing in-flight requests\n";
    server.stop();
    if (!quiet) {
      flsa::obs::metrics().report(std::cout);
      std::cout << "drained cleanly\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
