// flsa_client — command-line client for the alignment service.
//
//   flsa_client --port 7421 pair.fasta               # align two records
//   flsa_client --port 7421 --expect-score 82 pair.fasta   # CI assertion
//   flsa_client --port 7421 --flood 8 pair.fasta     # pipeline w/o waiting,
//                                                    # tally response codes
//   flsa_client --port 7421 --server-stats           # STATS verb
//   flsa_client --port 7421 --search genome.fasta reads.fasta
//       # REF_PUT the first record, SEARCH every remaining record
#include <algorithm>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sequence/fasta.hpp"
#include "service/client.hpp"
#include "support/cli.hpp"

namespace {

const flsa::Alphabet& alphabet_for(flsa::service::WireMatrix matrix) {
  switch (matrix) {
    case flsa::service::WireMatrix::kDna: return flsa::Alphabet::dna();
    case flsa::service::WireMatrix::kDnaN: return flsa::Alphabet::dna_n();
    default: return flsa::Alphabet::protein();
  }
}

}  // namespace

int main(int argc, char** argv) {
  flsa::CliParser cli(
      "flsa_client: sends alignment requests to a running flsa_serve "
      "(docs/service.md protocol)");
  cli.add_string("host", "127.0.0.1", "server address");
  cli.add_int("port", 7421, "server TCP port");
  cli.add_string("backends", "",
                 "comma-separated host:port list (overrides --host/--port); "
                 "connects to the first reachable address and rotates to "
                 "the next on transient failures with --retries");
  cli.add_string("matrix", "mdm78",
                 "mdm78 | pam250 | blosum62 | dna | dna-n");
  cli.add_int("gap", flsa::kDefaultGapExtend,
              "linear gap penalty per residue (<= 0)");
  cli.add_int("gap-open", flsa::kDefaultGapOpen,
              "affine gap-open penalty (<= 0; 0 selects linear gaps)");
  cli.add_int("k", 0, "FastLSA division factor (0 = server default)");
  cli.add_int("bm", 0, "FastLSA base-case cells (0 = server default)");
  cli.add_int("deadline-ms", 0,
              "queueing deadline in milliseconds (0 = none)");
  cli.add_flag("score-only", false, "omit the CIGAR from the response");
  cli.add_int("repeat", 1, "closed-loop repetitions of the request");
  cli.add_int("flood", 0,
              "pipeline this many copies without waiting, then tally the "
              "response codes (drives OVERLOADED against a full queue)");
  cli.add_int("min-success", 1,
              "flood mode: exit nonzero unless at least this many requests "
              "came back ALIGN_OK (guards CI against total rejection)");
  cli.add_int("retries", 0,
              "closed-loop retry attempts beyond the first for transient "
              "failures (OVERLOADED, resets); exponential backoff with "
              "decorrelated jitter");
  cli.add_flag("server-stats", false,
               "send a STATS request and print the metrics snapshot");
  cli.add_flag("list-refs", false,
               "send a REF_LIST request and print every registered handle "
               "(id, content token, residues, matrix, index k, name) — "
               "after a restart this is what survived the replay");
  cli.add_int("align-ref-a", 0,
              "align two already-registered handles: ref id of sequence a "
              "(no upload; pairs with --align-ref-b, honors --band/--matrix/"
              "--gap/--expect-score)");
  cli.add_int("align-ref-b", 0,
              "ref id of sequence b for --align-ref-a");
  cli.add_flag("search", false,
               "seed-chain-extend mode: REF_PUT the first FASTA record as "
               "the reference, then SEARCH each remaining record against it");
  cli.add_int("ref-k", 0,
              "search mode: seed (k-mer) length for the reference index "
              "(0 = server default: 12 for DNA, 5 for protein)");
  cli.add_int("max-hits", 0,
              "search mode: cap on reported hits per query (0 = server "
              "default)");
  cli.add_int("min-chain-score", 0,
              "search mode: chain/hit score floor (0 = server default)");
  cli.add_flag("stream", false,
               "genome-scale mode: chunk-upload the first two FASTA records "
               "into the server's packed store (SEQ_BEGIN/SEQ_CHUNK/SEQ_END, "
               "resumable), then align them by handle (ALIGN_REF) — peak "
               "client memory is the sequences plus the cigar, never a DP "
               "matrix");
  cli.add_int("band", 0,
              "stream mode: banded-alignment half-width (0 = full FastLSA; "
              "> 0 runs the linear-gap banded kernel, the only practical "
              "choice at multi-megabase scale)");
  cli.add_int("chunk", 1 << 20,
              "stream mode: residues per SEQ_CHUNK frame");
  cli.add_int("expect-score", std::numeric_limits<std::int64_t>::min(),
              "exit nonzero unless every ALIGN_OK score equals this");

  try {
    if (!cli.parse(argc, argv)) return 0;
    std::vector<flsa::service::Endpoint> endpoints;
    const std::string backends = cli.get_string("backends");
    if (!backends.empty()) {
      std::istringstream csv(backends);
      std::string token;
      while (std::getline(csv, token, ',')) {
        if (token.empty()) continue;
        const std::size_t colon = token.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= token.size()) {
          throw std::invalid_argument("bad --backends entry '" + token +
                                      "' (expected host:port)");
        }
        endpoints.push_back(
            {token.substr(0, colon),
             static_cast<std::uint16_t>(std::stoi(token.substr(colon + 1)))});
      }
    }
    if (endpoints.empty()) {
      endpoints.push_back({cli.get_string("host"),
                           static_cast<std::uint16_t>(cli.get_int("port"))});
    }

    flsa::service::Client client;
    client.connect(endpoints);
    const std::string host = client.current_endpoint().host;
    const std::uint16_t port = client.current_endpoint().port;

    if (cli.get_flag("server-stats")) {
      const flsa::service::Response response =
          client.call(flsa::service::StatsRequest{});
      const auto& stats = std::get<flsa::service::StatsResponse>(response);
      for (const auto& [name, value] : stats.entries) {
        std::cout << name << " = " << value << "\n";
      }
      return 0;
    }

    if (cli.get_flag("list-refs")) {
      const flsa::service::Response response =
          client.call(flsa::service::RefListRequest{});
      if (const auto* err =
              std::get_if<flsa::service::ErrorResponse>(&response)) {
        std::cerr << "REF_LIST error: " << to_string(err->code) << ": "
                  << err->message << "\n";
        return 1;
      }
      const auto& list = std::get<flsa::service::RefListResponse>(response);
      std::cout << "# " << list.refs.size() << " handle(s) registered at "
                << host << ":" << port << "\n";
      for (const flsa::service::RefListEntry& entry : list.refs) {
        std::cout << "ref " << entry.ref_id << " token="
                  << entry.content_token << " residues=" << entry.residues
                  << " matrix=" << to_string(entry.matrix)
                  << " k=" << entry.k
                  << (entry.indexed ? " indexed" : " align-only");
        if (!entry.name.empty()) std::cout << " name=" << entry.name;
        std::cout << "\n";
      }
      return 0;
    }

    if (cli.get_int("align-ref-a") != 0) {
      // Handle-only alignment: nothing is uploaded, so this works against
      // handles recovered by a restarted server — the restart-smoke CI leg
      // uses it to prove bit-identical scores across the restart.
      flsa::service::AlignRefRequest by_ref;
      if (!flsa::service::parse_wire_matrix(cli.get_string("matrix"),
                                            &by_ref.matrix)) {
        throw std::invalid_argument("unknown --matrix " +
                                    cli.get_string("matrix"));
      }
      by_ref.ref_a = static_cast<std::uint64_t>(cli.get_int("align-ref-a"));
      by_ref.ref_b = static_cast<std::uint64_t>(cli.get_int("align-ref-b"));
      by_ref.gap_open = static_cast<std::int32_t>(cli.get_int("gap-open"));
      by_ref.gap_extend = static_cast<std::int32_t>(cli.get_int("gap"));
      by_ref.k = static_cast<std::uint32_t>(cli.get_int("k"));
      by_ref.base_case_cells =
          static_cast<std::uint64_t>(cli.get_int("bm"));
      by_ref.band = static_cast<std::uint32_t>(
          std::max<std::int64_t>(0, cli.get_int("band")));
      by_ref.deadline_ms =
          static_cast<std::uint32_t>(cli.get_int("deadline-ms"));
      by_ref.score_only = cli.get_flag("score-only");
      const flsa::service::Response response = client.call(by_ref);
      if (const auto* err =
              std::get_if<flsa::service::ErrorResponse>(&response)) {
        std::cerr << "ALIGN_REF error: " << to_string(err->code) << ": "
                  << err->message << "\n";
        return 1;
      }
      const auto& ok = std::get<flsa::service::AlignPartResponse>(response);
      std::cout << "# ref " << by_ref.ref_a << " x ref " << by_ref.ref_b
                << " via " << host << ":" << port
                << "\nscore  : " << ok.score << "\ncells  : " << ok.cells
                << "\nexec   : "
                << static_cast<double>(ok.exec_micros) / 1e3 << " ms\n";
      const std::int64_t expected_ref = cli.get_int("expect-score");
      if (expected_ref != std::numeric_limits<std::int64_t>::min() &&
          ok.score != expected_ref) {
        std::cerr << "error: score " << ok.score << " != expected "
                  << expected_ref << "\n";
        return 1;
      }
      return 0;
    }

    if (cli.positional().empty()) {
      std::cerr << "error: no FASTA input given (see --help)\n";
      return 2;
    }

    flsa::service::AlignRequest request;
    if (!flsa::service::parse_wire_matrix(cli.get_string("matrix"),
                                          &request.matrix)) {
      throw std::invalid_argument("unknown --matrix " +
                                  cli.get_string("matrix"));
    }
    request.gap_open = static_cast<std::int32_t>(cli.get_int("gap-open"));
    request.gap_extend = static_cast<std::int32_t>(cli.get_int("gap"));
    request.k = static_cast<std::uint32_t>(cli.get_int("k"));
    request.base_case_cells =
        static_cast<std::uint64_t>(cli.get_int("bm"));
    request.deadline_ms =
        static_cast<std::uint32_t>(cli.get_int("deadline-ms"));
    request.score_only = cli.get_flag("score-only");

    const flsa::Alphabet& alphabet = alphabet_for(request.matrix);
    std::vector<flsa::Sequence> records;
    for (const std::string& path : cli.positional()) {
      for (flsa::Sequence& seq : flsa::read_fasta_file(path, alphabet)) {
        records.push_back(std::move(seq));
      }
    }
    if (records.size() < 2) {
      throw std::invalid_argument("need two FASTA records (got " +
                                  std::to_string(records.size()) + ")");
    }

    if (cli.get_flag("search")) {
      // Reference registration: first record, once per connection.
      flsa::service::RefPutRequest ref;
      ref.matrix = request.matrix;
      ref.k = static_cast<std::uint32_t>(cli.get_int("ref-k"));
      ref.name = records[0].id();
      ref.sequence = records[0].to_string();
      const flsa::service::Response put_response =
          client.call(std::move(ref));
      if (const auto* err =
              std::get_if<flsa::service::ErrorResponse>(&put_response)) {
        std::cerr << "REF_PUT error: " << to_string(err->code) << ": "
                  << err->message << "\n";
        return 1;
      }
      const auto& put =
          std::get<flsa::service::RefPutResponse>(put_response);
      std::cout << "# reference " << records[0].id() << " registered as id "
                << put.ref_id << " (" << put.residues << " residues, "
                << put.distinct_kmers << " distinct k-mers, built in "
                << static_cast<double>(put.build_micros) / 1e3 << " ms)\n";

      const auto retries = static_cast<unsigned>(
          std::max<std::int64_t>(0, cli.get_int("retries")));
      flsa::service::RetryPolicy retry_policy;
      retry_policy.max_attempts = retries + 1;

      bool any_failed = false;
      for (std::size_t q = 1; q < records.size(); ++q) {
        flsa::service::SearchRequest search;
        search.ref_id = put.ref_id;
        search.matrix = request.matrix;
        search.gap_extend = request.gap_extend;
        search.max_hits =
            static_cast<std::uint32_t>(cli.get_int("max-hits"));
        search.min_chain_score =
            static_cast<std::int32_t>(cli.get_int("min-chain-score"));
        search.deadline_ms = request.deadline_ms;
        search.score_only = request.score_only;
        search.query = records[q].to_string();
        const flsa::service::Response response =
            retries > 0
                ? client.call_with_retry(std::move(search), retry_policy)
                : client.call(std::move(search));
        if (const auto* err =
                std::get_if<flsa::service::ErrorResponse>(&response)) {
          std::cerr << records[q].id() << ": error response: "
                    << to_string(err->code) << ": " << err->message << "\n";
          any_failed = true;
          continue;
        }
        const auto& ok = std::get<flsa::service::SearchResponse>(response);
        std::cout << "# query " << records[q].id() << " ("
                  << records[q].size() << "): " << ok.hits.size()
                  << " hit(s), " << ok.anchors << " anchors, " << ok.chains
                  << " chains, exec "
                  << static_cast<double>(ok.exec_micros) / 1e3 << " ms\n";
        for (const flsa::service::WireHit& hit : ok.hits) {
          std::cout << "hit score=" << hit.score << " query=["
                    << hit.q_begin << "," << hit.q_end << ") ref=["
                    << hit.s_begin << "," << hit.s_end << ")";
          if (!hit.cigar.empty()) std::cout << " cigar=" << hit.cigar;
          std::cout << "\n";
        }
      }
      return any_failed ? 1 : 0;
    }

    if (cli.get_flag("stream")) {
      std::uint64_t handles[2] = {0, 0};
      for (std::size_t r = 0; r < 2; ++r) {
        flsa::service::Client::UploadOptions upload;
        upload.name = records[r].id();
        upload.matrix = request.matrix;
        upload.chunk_residues = static_cast<std::size_t>(
            std::max<std::int64_t>(1, cli.get_int("chunk")));
        const std::string letters = records[r].to_string();
        const flsa::service::Response uploaded =
            client.upload_sequence(letters, upload);
        if (const auto* err =
                std::get_if<flsa::service::ErrorResponse>(&uploaded)) {
          std::cerr << "upload error (" << records[r].id()
                    << "): " << to_string(err->code) << ": " << err->message
                    << "\n";
          return 1;
        }
        const auto& sealed =
            std::get<flsa::service::SeqOkResponse>(uploaded);
        handles[r] = sealed.ref_id;
        std::cout << "# " << records[r].id() << " (" << sealed.residues
                  << " residues) streamed as ref " << sealed.ref_id << "\n";
      }

      flsa::service::AlignRefRequest by_ref;
      by_ref.ref_a = handles[0];
      by_ref.ref_b = handles[1];
      by_ref.matrix = request.matrix;
      by_ref.gap_open = request.gap_open;
      by_ref.gap_extend = request.gap_extend;
      by_ref.k = request.k;
      by_ref.base_case_cells = request.base_case_cells;
      by_ref.band =
          static_cast<std::uint32_t>(std::max<std::int64_t>(0, cli.get_int("band")));
      by_ref.deadline_ms = request.deadline_ms;
      by_ref.score_only = request.score_only;
      const flsa::service::Response response = client.call(by_ref);
      if (const auto* err =
              std::get_if<flsa::service::ErrorResponse>(&response)) {
        std::cerr << "ALIGN_REF error: " << to_string(err->code) << ": "
                  << err->message << "\n";
        return 1;
      }
      const auto& ok = std::get<flsa::service::AlignPartResponse>(response);
      std::cout << "# ref " << by_ref.ref_a << " x ref " << by_ref.ref_b
                << " via " << host << ":" << port
                << (by_ref.band != 0
                        ? " (band " + std::to_string(by_ref.band) + ")"
                        : " (full FastLSA)")
                << "\nscore  : " << ok.score << "\ncells  : " << ok.cells
                << "\ncigar  : " << ok.cigar_part.size() << " chars in "
                << (ok.seq + 1) << " part(s)\nexec   : "
                << static_cast<double>(ok.exec_micros) / 1e3 << " ms\n";
      const std::int64_t expected_stream = cli.get_int("expect-score");
      if (expected_stream != std::numeric_limits<std::int64_t>::min() &&
          ok.score != expected_stream) {
        std::cerr << "error: score " << ok.score << " != expected "
                  << expected_stream << "\n";
        return 1;
      }
      return 0;
    }

    request.a = records[0].to_string();
    request.b = records[1].to_string();

    const std::int64_t expected = cli.get_int("expect-score");
    const bool expecting =
        expected != std::numeric_limits<std::int64_t>::min();
    bool all_expected = true;

    const auto flood = static_cast<std::size_t>(cli.get_int("flood"));
    if (flood > 0) {
      // Pipeline: send everything, then read everything. Against a full
      // queue this surfaces OVERLOADED rejections, which arrive *before*
      // the accepted jobs' results.
      for (std::size_t i = 0; i < flood; ++i) {
        flsa::service::AlignRequest copy = request;
        copy.request_id = 0;  // assign fresh ids
        client.send(std::move(copy));
      }
      std::map<std::string, std::size_t> tally;
      std::size_t succeeded = 0;
      for (std::size_t i = 0; i < flood; ++i) {
        const flsa::service::Response response = client.receive();
        if (const auto* ok =
                std::get_if<flsa::service::AlignResponse>(&response)) {
          ++tally["ALIGN_OK"];
          ++succeeded;
          if (expecting && ok->score != expected) all_expected = false;
        } else if (const auto* err =
                       std::get_if<flsa::service::ErrorResponse>(&response)) {
          ++tally[flsa::service::to_string(err->code)];
        } else {
          ++tally["STATS_OK"];
        }
      }
      for (const auto& [code, count] : tally) {
        std::cout << code << " : " << count << "\n";
      }
      if (expecting && !all_expected) {
        std::cerr << "error: a response score differed from "
                  << expected << "\n";
        return 1;
      }
      const auto min_success = static_cast<std::size_t>(
          std::max<std::int64_t>(0, cli.get_int("min-success")));
      if (succeeded < min_success) {
        std::cerr << "error: only " << succeeded << " of " << flood
                  << " flooded requests succeeded (--min-success "
                  << min_success << ")\n";
        return 1;
      }
      return 0;
    }

    const auto repeat =
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("repeat")));
    const auto retries =
        static_cast<unsigned>(std::max<std::int64_t>(0, cli.get_int("retries")));
    flsa::service::RetryPolicy retry_policy;
    retry_policy.max_attempts = retries + 1;
    for (std::size_t i = 0; i < repeat; ++i) {
      flsa::service::AlignRequest copy = request;
      copy.request_id = 0;
      const flsa::service::Response response =
          retries > 0 ? client.call_with_retry(std::move(copy), retry_policy)
                      : client.call(std::move(copy));
      if (const auto* err =
              std::get_if<flsa::service::ErrorResponse>(&response)) {
        std::cerr << "error response: " << to_string(err->code) << ": "
                  << err->message << "\n";
        return 1;
      }
      const auto& ok = std::get<flsa::service::AlignResponse>(response);
      std::cout << "# " << records[0].id() << " (" << request.a.size()
                << ") x " << records[1].id() << " (" << request.b.size()
                << ") via " << host << ":" << port << "\n"
                << "score  : " << ok.score << "\n";
      if (!ok.cigar.empty()) std::cout << "cigar  : " << ok.cigar << "\n";
      std::cout << "queued : " << static_cast<double>(ok.queue_micros) / 1e3
                << " ms\nexec   : "
                << static_cast<double>(ok.exec_micros) / 1e3 << " ms\n";
      if (ok.deadline_remaining_ms >= 0) {
        std::cout << "slack  : " << ok.deadline_remaining_ms
                  << " ms left on the deadline\n";
      }
      if (expecting && ok.score != expected) {
        std::cerr << "error: score " << ok.score << " != expected "
                  << expected << "\n";
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
